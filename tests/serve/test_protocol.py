"""Tests for the wire codec and protocol (:mod:`repro.serve.protocol`).

Golden frame fixtures pin the bytes of every message type (so a protocol
drift is a deliberate, versioned change, not an accident), and
property-style sweeps check that histogram / LUT / image round-trips
through the codec are bit-exact.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.session import SessionClosedError
from repro.api.types import CompensationSolution
from repro.core.histogram import Histogram
from repro.core.transforms import (
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    IdentityTransform,
    LUTTransform,
    PiecewiseLinearTransform,
    PixelTransform,
    SingleBandSpreadTransform,
)
from repro.display.driver import HierarchicalDriver
from repro.imaging.image import Image
from repro.serve import protocol
from repro.serve.coalescer import ServerClosedError, ServerOverloadedError


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #
class TestFraming:
    def test_golden_hello_frame_bytes(self):
        # the handshake frame is pinned byte for byte: 4-byte big-endian
        # length prefix + compact JSON with this exact key order
        frame = protocol.encode_frame(protocol.hello_frame())
        expected_payload = b'{"type":"hello","version":1}'
        assert frame == (len(expected_payload).to_bytes(4, "big")
                         + expected_payload)

    def test_frame_round_trip(self):
        message = {"type": "stats", "id": 7}
        frame = protocol.encode_frame(message)
        length = protocol.frame_length(frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == message

    def test_oversized_length_prefix_is_refused(self):
        header = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(protocol.ProtocolError, match="beyond"):
            protocol.frame_length(header)

    def test_truncated_header_is_refused(self):
        with pytest.raises(protocol.ProtocolError, match="header"):
            protocol.frame_length(b"\x00\x00")

    def test_non_object_payload_is_refused(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode_frame(b"[1, 2, 3]")

    def test_undecodable_payload_is_refused(self):
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.decode_frame(b"\xff\xfe not json")


# --------------------------------------------------------------------- #
# golden message fixtures: every request/response/error type
# --------------------------------------------------------------------- #
class TestGoldenMessages:
    def test_solve_request_shape(self):
        histogram = Histogram(np.array([3, 0, 1, 4]))
        message = protocol.solve_request(5, histogram, 10.0,
                                         algorithm="hebs")
        assert message == {
            "type": "solve", "id": 5,
            "histogram": {"counts": [3, 0, 1, 4]},
            "max_distortion": 10.0, "algorithm": "hebs",
        }
        # the builder accepts an image too, shipping only its histogram
        image = Image(np.array([[0, 0, 3]]), bit_depth=2)
        from_image = protocol.solve_request(5, image, 10.0,
                                            algorithm="hebs")
        assert from_image["histogram"] == {"counts": [2, 0, 0, 1]}

    def test_process_request_shape(self):
        image = Image(np.array([[1, 2], [3, 0]]), bit_depth=2, name="quad")
        message = protocol.process_request(9, image, 5.0)
        assert message["type"] == "process"
        assert message["id"] == 9
        assert message["algorithm"] is None
        assert message["image"]["bit_depth"] == 2
        assert message["image"]["name"] == "quad"

    def test_session_request_and_response_shapes(self):
        opened = protocol.open_session_request(
            1, 10.0, algorithm="hebs", options={"scene_gated_solve": True})
        assert opened == {"type": "open_session", "id": 1,
                          "max_distortion": 10.0, "algorithm": "hebs",
                          "options": {"scene_gated_solve": True}}
        assert protocol.session_response(1, "s00003") == {
            "type": "session", "id": 1, "session_id": "s00003"}
        assert protocol.close_session_request(2, "s00003") == {
            "type": "close_session", "id": 2, "session_id": "s00003"}
        assert protocol.session_closed_response(2, "s00003") == {
            "type": "session_closed", "id": 2, "session_id": "s00003"}

    def test_stats_request_shape(self):
        assert protocol.stats_request(3) == {"type": "stats", "id": 3}

    def test_every_message_is_json_serializable(self, lena):
        histogram = Histogram.of_image(lena)
        messages = [
            protocol.hello_frame(),
            protocol.solve_request(1, histogram, 10.0),
            protocol.process_request(2, lena, 10.0),
            protocol.open_session_request(3, 10.0),
            protocol.feed_request(4, "s00000", lena),
            protocol.close_session_request(5, "s00000"),
            protocol.stats_request(6),
        ]
        for message in messages:
            json.loads(json.dumps(message))


class TestErrorFrames:
    def test_overloaded_error_carries_structured_hints(self):
        error = ServerOverloadedError("queue full", queue_depth=17,
                                      retry_after_seconds=0.25)
        frame = protocol.error_response(4, error)
        assert frame == {"type": "error", "id": 4, "code": "overloaded",
                         "message": "queue full", "retry_after": 0.25,
                         "queue_depth": 17}
        rebuilt = protocol.exception_from_error(frame)
        assert isinstance(rebuilt, ServerOverloadedError)
        assert rebuilt.queue_depth == 17
        assert rebuilt.retry_after_seconds == 0.25

    def test_overloaded_without_hint_gets_the_default_retry_after(self):
        frame = protocol.error_response(1, ServerOverloadedError("full"))
        assert frame["retry_after"] == protocol.DEFAULT_RETRY_AFTER

    @pytest.mark.parametrize("error, code, rebuilt_type", [
        (ServerClosedError("closed"), "server_closed", ServerClosedError),
        (SessionClosedError("gone"), "session_closed", SessionClosedError),
        (ValueError("bad budget"), "bad_request", ValueError),
        (KeyError("algorithm"), "bad_request", ValueError),
        (RuntimeError("boom"), "internal", RuntimeError),
    ])
    def test_error_code_mapping_both_ways(self, error, code, rebuilt_type):
        frame = protocol.error_response(None, error)
        assert frame["code"] == code
        assert frame["id"] is None
        assert isinstance(protocol.exception_from_error(frame), rebuilt_type)

    def test_version_negotiation_error(self):
        frame = protocol.error_response(
            None, protocol.ProtocolError("expected version 1"),
            code="unsupported_version")
        assert frame["code"] == "unsupported_version"
        assert isinstance(protocol.exception_from_error(frame),
                          protocol.ProtocolError)


# --------------------------------------------------------------------- #
# value codec round-trips
# --------------------------------------------------------------------- #
def _json_trip(wire: dict) -> dict:
    """Round a wire dict through actual JSON text, as the socket would."""
    return json.loads(json.dumps(wire))


class TestHistogramCodec:
    def test_round_trip_is_bit_exact(self, lena):
        histogram = Histogram.of_image(lena)
        back = protocol.histogram_from_wire(
            _json_trip(protocol.histogram_to_wire(histogram)))
        assert back == histogram

    def test_property_random_histograms_round_trip(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            counts = rng.integers(0, 10_000, size=256)
            counts[rng.integers(0, 256)] += 1     # never all-zero
            histogram = Histogram(counts)
            back = protocol.histogram_from_wire(
                _json_trip(protocol.histogram_to_wire(histogram)))
            assert np.array_equal(back.counts, histogram.counts)

    def test_malformed_payload_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.histogram_from_wire({"wrong": 1})

    def test_absurd_pixel_mass_is_refused_before_allocation(self):
        # a ~50-byte frame must not be able to claim terabytes of pixels:
        # the decode refuses it long before Histogram.to_image would repeat
        with pytest.raises(protocol.ProtocolError, match="pixel"):
            protocol.histogram_from_wire({"counts": [2 ** 40, 2 ** 40]})
        # the bound itself is admissible
        ok = protocol.histogram_from_wire(
            {"counts": [protocol.MAX_HISTOGRAM_PIXELS, 0]})
        assert ok.n_pixels == protocol.MAX_HISTOGRAM_PIXELS


class TestImageCodec:
    def test_round_trip_is_bit_exact(self, lena):
        back = protocol.image_from_wire(
            _json_trip(protocol.image_to_wire(lena)))
        assert back == lena
        assert back.name == lena.name

    def test_property_random_images_round_trip(self):
        rng = np.random.default_rng(7)
        for bit_depth in (1, 8, 12, 16):
            pixels = rng.integers(0, 1 << bit_depth, size=(9, 13))
            image = Image(pixels, bit_depth=bit_depth)
            back = protocol.image_from_wire(
                _json_trip(protocol.image_to_wire(image)))
            assert back == image

    def test_rgb_image_round_trips(self):
        rng = np.random.default_rng(3)
        image = Image(rng.integers(0, 256, size=(5, 4, 3)), bit_depth=8)
        back = protocol.image_from_wire(
            _json_trip(protocol.image_to_wire(image)))
        assert back == image


class TestTransformCodec:
    @pytest.mark.parametrize("transform", [
        IdentityTransform(),
        GrayscaleShiftTransform(beta=0.7),
        GrayscaleSpreadTransform(beta=0.55),
        SingleBandSpreadTransform(g_low=0.1, g_high=0.9),
        PiecewiseLinearTransform(x_breaks=(0.0, 0.3, 1.0),
                                 y_breaks=(0.0, 0.8, 1.0)),
        LUTTransform(table=(0.0, 0.25, 0.5, 1.0)),
    ])
    def test_builtin_transforms_round_trip_exactly(self, transform):
        back = protocol.transform_from_wire(
            _json_trip(protocol.transform_to_wire(transform)))
        assert back == transform

    def test_property_random_luts_round_trip_bit_exact(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            table = np.sort(rng.random(64))
            table[0], table[-1] = 0.0, 1.0
            transform = LUTTransform(table=tuple(float(v) for v in table))
            back = protocol.transform_from_wire(
                _json_trip(protocol.transform_to_wire(transform)))
            assert back.table == transform.table     # float-exact

    def test_round_tripped_transform_applies_bit_identically(self, lena):
        transform = PiecewiseLinearTransform(
            x_breaks=(0.0, 0.2, 0.8, 1.0), y_breaks=(0.0, 0.5, 0.9, 1.0))
        back = protocol.transform_from_wire(
            _json_trip(protocol.transform_to_wire(transform)))
        assert np.array_equal(back.apply(lena).pixels,
                              transform.apply(lena).pixels)

    def test_unknown_transform_degrades_to_its_lut(self):
        class Squaring(PixelTransform):
            def evaluate(self, x):
                return x ** 2

        wire = protocol.transform_to_wire(Squaring())
        assert wire["kind"] == "lut"
        back = protocol.transform_from_wire(_json_trip(wire))
        grid = np.linspace(0.0, 1.0, 256)
        # exact at every grid point of the sampled LUT
        assert np.array_equal(back(grid), Squaring()(grid))

    def test_unknown_kind_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError, match="unknown transform"):
            protocol.transform_from_wire({"kind": "mystery"})


class TestSolutionAndResultCodec:
    def test_driver_program_round_trip_is_bit_exact(self):
        program = HierarchicalDriver(n_sources=4).program(
            [0.0, 100.0, 255.0], [0.0, 180.0, 255.0], 0.8)
        back = protocol.driver_program_from_wire(
            _json_trip(protocol.driver_program_to_wire(program)))
        assert np.array_equal(back.breakpoint_levels,
                              program.breakpoint_levels)
        assert np.array_equal(back.reference_voltages,
                              program.reference_voltages)
        assert back.backlight_factor == program.backlight_factor
        assert np.array_equal(back.lut(), program.lut())

    def test_solution_round_trip(self, pipeline, lena):
        from repro.api.engine import Engine
        from repro.api.registry import HEBSAlgorithm

        solution = Engine(HEBSAlgorithm(pipeline)).solve(lena, 10.0)
        back = protocol.solution_from_wire(
            _json_trip(protocol.solution_to_wire(solution)))
        assert back.algorithm == solution.algorithm
        assert back.backlight_factor == solution.backlight_factor
        assert back.transform == solution.transform
        # the native details stay server-side by design
        assert back.details is None
        # ... but the shipped LUT applies bit-identically
        grayscale = lena.to_grayscale()
        assert np.array_equal(back.transform.apply(grayscale).pixels,
                              solution.transform.apply(grayscale).pixels)

    def test_result_round_trip_preserves_equality(self, pipeline, lena):
        from repro.api.engine import Engine
        from repro.api.registry import HEBSAlgorithm

        result = Engine(HEBSAlgorithm(pipeline)).process(lena, 10.0)
        back = protocol.result_from_wire(
            _json_trip(protocol.result_to_wire(result)))
        assert back == result     # dataclass equality: images, transform,
        assert back.power.total == result.power.total      # powers, budget
        assert back.max_distortion == result.max_distortion

    def test_stream_frame_round_trip(self, pipeline, lena, pout):
        from repro.api.engine import Engine
        from repro.api.registry import HEBSAlgorithm

        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(10.0) as session:
            outcomes = [session.submit(lena), session.submit(pout)]
        for outcome in outcomes:
            back = protocol.stream_frame_from_wire(
                _json_trip(protocol.stream_frame_to_wire(outcome)))
            assert back.result == outcome.result
            assert back.requested_backlight == outcome.requested_backlight
            assert back.applied_backlight == outcome.applied_backlight
            assert back.scene_change == outcome.scene_change

    def test_solution_without_driver_program_round_trips(self):
        solution = CompensationSolution(
            algorithm="cbcs",
            transform=SingleBandSpreadTransform(0.1, 0.9),
            backlight_factor=0.8)
        back = protocol.solution_from_wire(
            _json_trip(protocol.solution_to_wire(solution)))
        assert back.driver_program is None
        assert back.transform == solution.transform


# --------------------------------------------------------------------- #
# protocol v2: version negotiation
# --------------------------------------------------------------------- #
class TestVersionNegotiation:
    def test_v1_golden_hello_bytes_are_unchanged(self):
        # a v2-capable client's hello keeps version=1 as the baseline;
        # max_version rides alongside, so pre-v2 servers still accept it
        frame = protocol.encode_frame(
            protocol.hello_frame(max_version=protocol.PROTOCOL_VERSION))
        payload = b'{"type":"hello","version":1,"max_version":2}'
        assert frame == len(payload).to_bytes(4, "big") + payload

    def test_max_version_is_omitted_when_equal_to_version(self):
        assert protocol.hello_frame(max_version=1) == \
            {"type": "hello", "version": 1}

    @pytest.mark.parametrize("hello, want", [
        ({"type": "hello", "version": 1}, 1),                    # v1 peer
        ({"type": "hello", "version": 1, "max_version": 2}, 2),  # v2 peer
        ({"type": "hello", "version": 1, "max_version": 99}, 2), # future peer
        ({"type": "hello", "version": 2}, 2),      # v2 baseline (server)
        ({"type": "hello", "version": 99}, 0),     # disjoint: refuse
        ({"type": "hello", "version": 0}, 0),
        ({"type": "hello"}, 0),                    # malformed
        ({"type": "hello", "version": "fast"}, 0),
        ({"type": "hello", "version": 1, "max_version": "x"}, 0),
    ])
    def test_negotiated_version_matrix(self, hello, want):
        assert protocol.negotiated_version(hello) == want

    def test_max_version_below_version_never_lowers_the_offer(self):
        hello = {"type": "hello", "version": 2, "max_version": 1}
        assert protocol.negotiated_version(hello) == 2

    def test_shm_offer_rides_the_hello(self):
        frame = protocol.hello_frame(max_version=2, shm={"token": "t"})
        assert frame["shm"] == {"token": "t"}
        assert "shm" not in protocol.hello_frame()


# --------------------------------------------------------------------- #
# strict array descriptors (shared by the v1 and v2 codecs)
# --------------------------------------------------------------------- #
class TestArrayDescriptors:
    """Failing-before regressions: each of these malformed descriptors
    used to reach numpy raw (reshape inference, struct dtypes) instead of
    surfacing as a typed ProtocolError → bad_request frame."""

    def _wire(self, **overrides) -> dict:
        wire = protocol.array_to_wire(np.arange(4, dtype=np.uint8))
        wire.update(overrides)
        return wire

    def test_base64_array_round_trips(self):
        array = np.arange(12, dtype=np.uint16).reshape(3, 4)
        back = protocol.array_from_wire(
            _json_trip(protocol.array_to_wire(array)))
        assert np.array_equal(back, array)
        assert back.dtype == array.dtype

    def test_ndarray_leaf_passes_through(self):
        # a v2 frame already materialized its arrays: pass-through
        array = np.arange(3, dtype=np.float64)
        assert protocol.array_from_wire(array) is array

    def test_negative_dimension_rejected(self):
        # shape [-1] would make reshape *infer* a 4-element shape the
        # peer never declared
        with pytest.raises(protocol.ProtocolError, match="negative"):
            protocol.array_from_wire(self._wire(shape=[-1]))

    def test_unrecognized_dtype_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="dtype"):
            protocol.array_from_wire(self._wire(dtype="V4", shape=[1]))

    def test_object_dtype_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="dtype"):
            protocol.array_from_wire(self._wire(dtype="O"))

    def test_structured_dtype_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.array_from_wire(self._wire(dtype=[("a", "u1")]))

    def test_boolean_dimension_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="non-integer"):
            protocol.array_from_wire(self._wire(shape=[True, 4]))

    def test_shape_payload_mismatch_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="payload has 4"):
            protocol.array_from_wire(self._wire(shape=[5]))

    def test_invalid_base64_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="malformed"):
            protocol.array_from_wire(self._wire(data="!!!not base64!!!"))

    def test_check_descriptor_accepts_the_valid_forms(self):
        dtype, shape = protocol.check_descriptor("<u2", [3, 4], 24)
        assert dtype == np.dtype("<u2")
        assert shape == (3, 4)
        # zero-sized arrays are legal
        assert protocol.check_descriptor("|u1", [0, 7], 0)[1] == (0, 7)
