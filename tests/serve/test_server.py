"""Tests for the worker-pool Server: end-to-end over the real engine."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.serve import Server, ServerClosedError


@pytest.fixture
def server(pipeline):
    with Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                max_delay=0.002) as instance:
        yield instance


class TestRequestPaths:
    def test_submit_returns_future_with_compensation_result(self, server,
                                                            lena):
        result = server.submit(lena, 10.0).result(timeout=30.0)
        assert result.algorithm == "hebs"
        assert 0.0 < result.backlight_factor <= 1.0

    def test_process_is_synchronous_submit(self, server, lena):
        result = server.process(lena, 10.0)
        assert result.algorithm == "hebs"

    def test_served_result_identical_to_direct_engine(self, pipeline, server,
                                                      lena):
        expected = Engine(HEBSAlgorithm(pipeline)).process(lena, 10.0)
        actual = server.process(lena, 10.0)
        assert np.array_equal(expected.output.pixels, actual.output.pixels)
        assert actual.backlight_factor == expected.backlight_factor
        assert actual.distortion == expected.distortion

    def test_process_many_preserves_order(self, server, small_suite):
        images = list(small_suite.values())
        results = server.process_many(images, 10.0)
        for image, result in zip(images, results):
            assert result.original == image.to_grayscale()

    def test_per_request_algorithm_override(self, server, lena):
        assert server.process(lena, 10.0,
                              algorithm="cbcs").algorithm == "cbcs"


class TestWarmup:
    def test_warmup_counts_fresh_solves(self, pipeline, small_suite):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            primed = server.warmup(small_suite, budgets=(10.0, 20.0))
            assert primed == 2 * len(small_suite)
            # a second warm-up finds everything cached
            assert server.warmup(small_suite, budgets=(10.0, 20.0)) == 0

    def test_warmup_makes_first_requests_cache_hits(self, pipeline,
                                                    small_suite):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            server.warmup(small_suite, budgets=(10.0,))
            results = server.process_many(list(small_suite.values()), 10.0)
            assert all(result.from_cache for result in results)

    def test_warmup_accepts_sequences(self, pipeline, lena, pout):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=1) as server:
            assert server.warmup([lena, pout], budgets=(10.0,)) == 2


class TestStatsAndLifecycle:
    def test_stats_snapshot_reflects_traffic(self, server, small_suite):
        images = list(small_suite.values()) * 3
        server.process_many(images, 10.0)
        stats = server.stats()
        assert stats.submitted == len(images)
        assert stats.completed == len(images)
        assert stats.failed == 0
        assert stats.throughput > 0.0
        assert stats.latency_p99 >= stats.latency_p50 > 0.0
        # 12 requests over 4 distinct histograms: solves were shared
        assert stats.cache.reuse_rate > 0.0

    def test_queue_drains_to_zero(self, server, lena):
        server.process(lena, 10.0)
        assert server.queue_depth == 0

    def test_closed_server_rejects_submissions(self, pipeline, lena):
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1)
        server.close()
        assert server.closed
        with pytest.raises(ServerClosedError):
            server.submit(lena, 10.0)

    def test_context_manager_resolves_inflight_futures(self, pipeline,
                                                       small_suite):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            futures = [server.submit(image, 10.0)
                       for image in small_suite.values()]
        # the with-exit drained the queue before returning
        assert all(future.done() for future in futures)

    def test_engine_is_shared_surface(self, server, lena):
        """The server serves from its engine: direct engine traffic and
        served traffic share one cache."""
        server.engine.process(lena, 10.0)
        assert server.process(lena, 10.0).from_cache
