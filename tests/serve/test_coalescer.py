"""Tests for the micro-batching request coalescer (engine-stubbed: fast)."""

import threading
import time

import pytest

from repro.serve.coalescer import (
    RequestCoalescer,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.stats import StatsRecorder


class FakeEngine:
    """Records every process_batch call; returns one token per image."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def process_batch(self, images, max_distortion, algorithm=None):
        with self._lock:
            self.calls.append((list(images), max_distortion, algorithm))
        if self.delay:
            time.sleep(self.delay)
        return [("result", image, max_distortion, algorithm)
                for image in images]


class FailingEngine:
    def process_batch(self, images, max_distortion, algorithm=None):
        raise RuntimeError("solver exploded")


class ShortEngine:
    """Buggy engine dropping the last result of every batch."""

    def process_batch(self, images, max_distortion, algorithm=None):
        return [("result", image) for image in images][:-1]


class TestSubmission:
    def test_submit_resolves_future_with_result(self):
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.0) as coalescer:
            future = coalescer.submit("img", 10.0)
            assert future.result(timeout=5.0) == ("result", "img", 10.0, None)

    def test_results_map_to_their_own_requests(self):
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.01) as coalescer:
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(10)]
            for index, future in enumerate(futures):
                assert future.result(timeout=5.0)[1] == f"img{index}"

    def test_negative_budget_rejected_at_submit(self):
        with RequestCoalescer(FakeEngine()) as coalescer:
            with pytest.raises(ValueError, match="non-negative"):
                coalescer.submit("img", -1.0)

    def test_invalid_configuration_rejected(self):
        engine = FakeEngine()
        with pytest.raises(ValueError, match="max_batch"):
            RequestCoalescer(engine, max_batch=0)
        with pytest.raises(ValueError, match="max_pending"):
            RequestCoalescer(engine, max_pending=0)
        with pytest.raises(ValueError, match="workers"):
            RequestCoalescer(engine, workers=0)
        with pytest.raises(ValueError, match="max_delay"):
            RequestCoalescer(engine, max_delay=-0.1)


class TestCoalescing:
    def test_concurrent_submits_share_one_engine_batch(self):
        """A burst inside the batching window becomes one process_batch."""
        engine = FakeEngine(delay=0.05)
        coalescer = RequestCoalescer(engine, max_batch=32, max_delay=0.25,
                                     workers=1)
        with coalescer:
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(8)]
            for future in futures:
                future.result(timeout=5.0)
        assert len(engine.calls) == 1
        assert len(engine.calls[0][0]) == 8

    def test_batch_splits_by_budget(self):
        """Different budgets cannot share a batch (solutions differ)."""
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.25) as coalescer:
            one = coalescer.submit("a", 10.0)
            two = coalescer.submit("b", 20.0)
            assert one.result(timeout=5.0)[2] == 10.0
            assert two.result(timeout=5.0)[2] == 20.0
        budgets = sorted(budget for _, budget, _ in engine.calls)
        assert budgets == [10.0, 20.0]

    def test_batch_splits_by_algorithm(self):
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.25) as coalescer:
            one = coalescer.submit("a", 10.0, algorithm="hebs")
            two = coalescer.submit("b", 10.0, algorithm="cbcs")
            assert one.result(timeout=5.0)[3] == "hebs"
            assert two.result(timeout=5.0)[3] == "cbcs"
        assert len(engine.calls) == 2

    def test_distinct_instances_with_one_name_never_share_a_batch(self):
        """Two differently configured algorithm instances under the same
        registry name must not ride in one batch: the whole group runs
        through its head's instance."""
        from repro.api.registry import CompensationAlgorithm

        first, second = CompensationAlgorithm(), CompensationAlgorithm()
        first.name = second.name = "hebs"
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.25) as coalescer:
            one = coalescer.submit("a", 10.0, algorithm=first)
            two = coalescer.submit("b", 10.0, algorithm=second)
            assert one.result(timeout=5.0)[3] is first
            assert two.result(timeout=5.0)[3] is second
        assert len(engine.calls) == 2

    def test_max_batch_caps_the_claim(self):
        engine = FakeEngine(delay=0.02)
        with RequestCoalescer(engine, max_batch=4, max_delay=0.25,
                              workers=1) as coalescer:
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(10)]
            for future in futures:
                future.result(timeout=5.0)
        assert max(len(images) for images, _, _ in engine.calls) <= 4

    def test_lone_request_not_delayed_past_window(self):
        engine = FakeEngine()
        with RequestCoalescer(engine, max_delay=0.05) as coalescer:
            started = time.perf_counter()
            coalescer.submit("img", 10.0).result(timeout=5.0)
            elapsed = time.perf_counter() - started
        assert elapsed < 1.0        # window + execution, not unbounded


class TestBackpressure:
    def test_full_queue_times_out_with_overload_error(self):
        engine = FakeEngine(delay=0.5)          # keep the worker busy
        coalescer = RequestCoalescer(engine, max_batch=1, max_pending=1,
                                     max_delay=0.0, workers=1)
        try:
            coalescer.submit("a", 10.0)         # claimed by the worker
            time.sleep(0.05)                    # let the worker pick it up
            coalescer.submit("b", 10.0)         # fills the queue bound
            with pytest.raises(ServerOverloadedError, match="queue full"):
                coalescer.submit("c", 10.0, timeout=0.0)
        finally:
            coalescer.close(wait=True)

    def test_backpressure_waits_for_space_within_timeout(self):
        engine = FakeEngine(delay=0.05)
        coalescer = RequestCoalescer(engine, max_batch=1, max_pending=1,
                                     max_delay=0.0, workers=1)
        try:
            coalescer.submit("a", 10.0)
            time.sleep(0.02)
            coalescer.submit("b", 10.0)
            # space frees as the worker drains; a patient submit succeeds
            future = coalescer.submit("c", 10.0, timeout=5.0)
            assert future.result(timeout=5.0)[1] == "c"
        finally:
            coalescer.close(wait=True)

    def test_rejections_are_recorded(self):
        recorder = StatsRecorder()
        engine = FakeEngine(delay=0.5)
        coalescer = RequestCoalescer(engine, max_batch=1, max_pending=1,
                                     max_delay=0.0, workers=1,
                                     recorder=recorder)
        try:
            coalescer.submit("a", 10.0)
            time.sleep(0.05)
            coalescer.submit("b", 10.0)
            with pytest.raises(ServerOverloadedError):
                coalescer.submit("c", 10.0, timeout=0.0)
        finally:
            coalescer.close(wait=True)
        snapshot = recorder.snapshot()
        assert snapshot.rejected == 1
        assert snapshot.submitted == 2


class TestFailuresAndLifecycle:
    def test_engine_failure_propagates_to_every_member_future(self):
        with RequestCoalescer(FailingEngine(), max_delay=0.05) as coalescer:
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="solver exploded"):
                    future.result(timeout=5.0)

    def test_short_result_batch_fails_fast_instead_of_hanging(self):
        """Regression: ``zip`` over a too-short result list silently
        stranded the tail futures in RUNNING forever."""
        with RequestCoalescer(ShortEngine(), max_delay=0.05) as coalescer:
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="2 results for"):
                    future.result(timeout=5.0)

    def test_close_drains_pending_requests(self):
        engine = FakeEngine(delay=0.01)
        coalescer = RequestCoalescer(engine, max_batch=2, max_delay=0.0,
                                     workers=1)
        futures = [coalescer.submit(f"img{i}", 10.0) for i in range(6)]
        coalescer.close(wait=True)
        for future in futures:
            assert future.done()
            assert future.result()[0] == "result"

    def test_submit_after_close_raises(self):
        coalescer = RequestCoalescer(FakeEngine())
        coalescer.close(wait=True)
        with pytest.raises(ServerClosedError):
            coalescer.submit("img", 10.0)
        assert coalescer.closed

    def test_submit_refused_at_close_counts_as_rejected(self):
        recorder = StatsRecorder()
        coalescer = RequestCoalescer(FakeEngine(), recorder=recorder)
        coalescer.close(wait=True)
        with pytest.raises(ServerClosedError):
            coalescer.submit("img", 10.0)
        assert recorder.snapshot().rejected == 1

    def test_cancelled_pending_future_does_not_kill_the_worker(self):
        """Regression: resolving a client-cancelled future raised
        InvalidStateError inside the worker, stranding its batch siblings
        and permanently shrinking the pool."""
        from concurrent.futures import CancelledError

        recorder = StatsRecorder()
        engine = FakeEngine(delay=0.1)          # hold the sole worker busy
        with RequestCoalescer(engine, max_batch=8, max_delay=0.0, workers=1,
                              recorder=recorder) as coalescer:
            coalescer.submit("busy", 10.0)      # claimed by the worker
            time.sleep(0.03)
            doomed = coalescer.submit("doomed", 10.0)
            sibling = coalescer.submit("sibling", 10.0)
            assert doomed.cancel()              # still pending: cancellable
            # the sibling in the same batch must still resolve...
            assert sibling.result(timeout=5.0)[1] == "sibling"
            with pytest.raises(CancelledError):
                doomed.result(timeout=1.0)
            # ...and the worker must survive to serve later traffic
            assert coalescer.submit("after", 10.0).result(
                timeout=5.0)[1] == "after"
        snapshot = recorder.snapshot()
        assert snapshot.failed == 1             # the cancelled request
        assert snapshot.completed == 3

    def test_multiple_workers_drain_in_parallel(self):
        engine = FakeEngine(delay=0.05)
        with RequestCoalescer(engine, max_batch=1, max_delay=0.0,
                              workers=4) as coalescer:
            started = time.perf_counter()
            futures = [coalescer.submit(f"img{i}", 10.0) for i in range(8)]
            for future in futures:
                future.result(timeout=5.0)
            elapsed = time.perf_counter() - started
        # 8 sequential 50ms batches would take ~400ms; 4 workers halve it
        assert elapsed < 0.35


class SlowRecorder(StatsRecorder):
    """Delays the completion bookkeeping, widening the window in which a
    woken client could observe a snapshot missing its own request."""

    def note_completed(self, latency_seconds: float) -> None:
        time.sleep(0.05)
        super().note_completed(latency_seconds)


class TestStatsOrdering:
    def test_client_woken_by_result_sees_itself_completed(self):
        """Regression: futures were resolved *before* the recorder counted
        the completion, so a client reading stats right after ``result()``
        could observe ``completed < submitted``."""
        recorder = SlowRecorder()
        with RequestCoalescer(FakeEngine(), max_delay=0.0,
                              recorder=recorder) as coalescer:
            future = coalescer.submit("img", 10.0)
            future.result(timeout=5.0)
            assert recorder.snapshot().completed == 1
