"""Tests for the same-host shared-memory lane (repro.serve.shm).

The lane is a negotiated optimization, never a correctness surface: a
client that gets it produces bit-identical results to the socket lane, a
spoofed same-host claim is refused, and every shared block is unlinked on
shutdown from whichever side survives (leak-proofing — blocks outlive
processes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.client import Client
from repro.imaging.image import Image
from repro.serve import NetworkServer, Server, protocol
from repro.serve import shm as shm_lane
from repro.serve.protocol import ProtocolError

pytestmark = pytest.mark.skipif(not shm_lane.shm_available(),
                                reason="multiprocessing.shared_memory "
                                       "unavailable")


@pytest.fixture(scope="module")
def net(pipeline):
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                    max_delay=0.002)
    network = NetworkServer(server)
    network.start()
    yield network
    network.close()


class TestNegotiation:
    def test_same_host_client_gets_the_lane(self, net):
        host, port = net.address
        with Client(host=host, port=port, shm=True) as client:
            assert client.protocol_version == 2
            assert client._shm is not None and client._shm.active
            assert "+shm" in repr(client)

    def test_lane_is_off_by_default(self, net):
        host, port = net.address
        with Client(host=host, port=port) as client:
            assert client._shm is None
            assert "+shm" not in repr(client)

    def test_v1_connection_never_gets_the_lane(self, net):
        host, port = net.address
        with Client(host=host, port=port, shm=True,
                    max_version=1) as client:
            assert client.protocol_version == 1
            assert client._shm is None or not client._shm.active

    def test_spoofed_offer_is_refused(self, net):
        import socket

        host, port = net.address
        # a remote attacker guessing block names: the probe attach (or
        # the nonce compare) fails, and the server answers shm: false
        spoof = {"name": "psm_no_such_block_0", "nonce": "ab" * 16}
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(protocol.encode_frame(
                protocol.hello_frame(max_version=2, shm=spoof)))
            header = sock.recv(4)
            payload = sock.recv(protocol.frame_length(header))
            hello = protocol.decode_frame(payload)
        assert hello["version"] == 2
        assert not hello.get("shm")

    def test_wrong_nonce_fails_verification(self):
        lane = shm_lane.ShmLane()
        try:
            offer = lane.offer()
            assert shm_lane.ShmRegistry.verify_offer(offer)
            forged = dict(offer, nonce="00" * 16)
            assert not shm_lane.ShmRegistry.verify_offer(forged)
        finally:
            lane.close()

    @pytest.mark.parametrize("offer", [
        None, "block", {}, {"name": "x"}, {"nonce": "zz"},
        {"name": "x", "nonce": ""}, {"name": "x", "nonce": "not hex"},
    ])
    def test_malformed_offers_are_refused(self, offer):
        assert not shm_lane.ShmRegistry.verify_offer(offer)


class TestParity:
    def test_shm_process_is_bit_identical_to_the_socket_lane(
            self, net, pipeline, small_suite):
        host, port = net.address
        engine = Engine(HEBSAlgorithm(pipeline))
        with Client(host=host, port=port, shm=True) as lane:
            assert lane._shm is not None and lane._shm.active
            for frame in small_suite.values():
                want = engine.process(frame, 10.0)
                assert lane.process(frame, 10.0) == want

    def test_shm_feed_is_bit_identical_to_the_socket_lane(
            self, net, pipeline, small_suite):
        host, port = net.address
        frames = list(small_suite.values()) * 2
        with Engine(HEBSAlgorithm(pipeline)).open_session(10.0) as local:
            expected = [local.submit(frame) for frame in frames]
        with Client(host=host, port=port, shm=True) as lane:
            with lane.open_session(10.0) as session:
                actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.result == want.result
            assert got.applied_backlight == want.applied_backlight

    def test_shm_feed_ships_no_pixels_over_the_socket(self, net, baboon):
        host, port = net.address

        def feed_bytes(**options):
            with Client(host=host, port=port, **options) as client:
                with client.open_session(10.0) as session:
                    base = client.bytes_sent
                    session.submit(baboon)
                    return client.bytes_sent - base

        # the control frame is ~100 bytes of block reference; the socket
        # lane ships the full pixel payload
        assert feed_bytes(shm=True) * 10 <= feed_bytes()

    def test_pipeline_bypasses_the_shm_lane(self, net, lena, pipeline):
        # pipelined traffic is not lockstep: the single data block would
        # be overwritten under an in-flight request, so it stays on the
        # socket — and still answers bit-exactly
        host, port = net.address
        want = Engine(HEBSAlgorithm(pipeline)).process(lena, 10.0)
        with Client(host=host, port=port, shm=True) as client:
            base = client.bytes_sent
            with client.pipeline() as batch:
                reply = batch.process(lena, 10.0)
            assert reply.result() == want
            assert client.bytes_sent - base > lena.pixels.size  # real pixels


class TestLifecycle:
    def _attach(self, name: str):
        from multiprocessing import shared_memory
        return shared_memory.SharedMemory(name=name)

    def test_client_close_unlinks_its_blocks(self, net, lena):
        host, port = net.address
        client = Client(host=host, port=port, shm=True)
        client.process(lena, 10.0)
        block_name = client._shm._data.name
        self._attach(block_name).close()    # alive while the client is
        client.close()
        with pytest.raises(FileNotFoundError):
            self._attach(block_name)

    def test_probe_block_is_retired_right_after_the_handshake(self, net):
        host, port = net.address
        with Client(host=host, port=port, shm=True) as client:
            assert client._shm._probe is None

    def test_registry_close_unlinks_attachments(self):
        # the crashed-client insurance: the server unlinks whatever the
        # client leaked
        lane = shm_lane.ShmLane()
        lane.conclude(True)
        registry = shm_lane.ShmRegistry()
        try:
            descriptor = lane.send_image(Image(np.full((8, 8), 40)))
            image = registry.resolve({"shm": descriptor})
            assert np.array_equal(image.pixels, np.full((8, 8), 40))
            name = descriptor["block"]
            registry.close()
            with pytest.raises(FileNotFoundError):
                self._attach(name)
        finally:
            lane.close()    # loses the unlink race; must not raise

    def test_resolved_image_is_a_copy(self):
        lane = shm_lane.ShmLane()
        lane.conclude(True)
        registry = shm_lane.ShmRegistry()
        try:
            first = registry.resolve(
                {"shm": lane.send_image(Image(np.full((4, 4), 10)))})
            second = registry.resolve(
                {"shm": lane.send_image(Image(np.full((4, 4), 200)))})
            # the client reused its block; the first image must not move
            assert int(first.pixels[0, 0]) == 10
            assert int(second.pixels[0, 0]) == 200
        finally:
            registry.close()
            lane.close()


class TestMalformedReferences:
    def _registry(self):
        return shm_lane.ShmRegistry()

    def test_unknown_block_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="unknown shared-memory"):
            self._registry().resolve({"shm": {
                "block": "psm_gone", "dtype": "|u1", "shape": [4],
                "nbytes": 4, "bit_depth": 8}})

    def test_non_mapping_reference_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            self._registry().resolve({"shm": "a-name"})

    def test_descriptor_validation_matches_the_socket_codecs(self):
        lane = shm_lane.ShmLane()
        lane.conclude(True)
        registry = self._registry()
        try:
            descriptor = lane.send_image(Image(np.zeros((4, 4))))
            with pytest.raises(ProtocolError, match="dtype"):
                registry.resolve({"shm": dict(descriptor, dtype="V4")})
            with pytest.raises(ProtocolError, match="negative"):
                registry.resolve({"shm": dict(descriptor, shape=[-1])})
        finally:
            registry.close()
            lane.close()

    def test_oversized_claim_is_refused(self):
        lane = shm_lane.ShmLane()
        lane.conclude(True)
        registry = self._registry()
        try:
            descriptor = lane.send_image(Image(np.zeros((4, 4))))
            huge = {"shm": dict(descriptor, nbytes=1 << 20,
                                shape=[1 << 20])}
            with pytest.raises(ProtocolError, match="block"):
                registry.resolve(huge)
        finally:
            registry.close()
            lane.close()

    def test_server_answers_bad_request_for_a_dead_block(self, net, lena):
        host, port = net.address
        with Client(host=host, port=port, shm=True) as client:
            assert client._shm.active
            # sabotage: unlink the data block under the lane, then feed
            client.process(lena, 10.0)
            from multiprocessing import shared_memory
            name = client._shm._data.name
            shared_memory.SharedMemory(name=name).unlink()
            client._shm._data.close()
            client._shm._data = None
            # next send recreates a block; the lane recovers cleanly
            result = client.process(lena, 10.0)
            assert result.algorithm == "hebs"
