"""Tests for the serving statistics recorder and snapshot math."""

import threading

import pytest

from repro.api.cache import CacheStats
from repro.serve.stats import ServerStats, StatsRecorder, percentile


class TestPercentile:
    def test_empty_sequence_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_value(self):
        assert percentile([42.0], 50) == 42.0
        assert percentile([42.0], 99) == 42.0

    def test_nearest_rank_on_known_sequence(self):
        values = list(range(1, 101))            # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_unsorted_input_is_sorted_internally(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101)


class TestStatsRecorder:
    def test_counters_accumulate(self):
        recorder = StatsRecorder()
        recorder.note_submitted(3)
        recorder.note_completed(0.010)
        recorder.note_completed(0.020)
        recorder.note_failed()
        recorder.note_batch(2)
        snapshot = recorder.snapshot()
        assert snapshot.submitted == 3
        assert snapshot.completed == 2
        assert snapshot.failed == 1
        assert snapshot.in_flight == 0
        assert snapshot.batches == 1
        assert snapshot.mean_batch_size == 2.0

    def test_latency_percentiles_over_window(self):
        recorder = StatsRecorder(window=1000)
        recorder.note_submitted(100)
        for ms in range(1, 101):
            recorder.note_completed(ms / 1e3)
        snapshot = recorder.snapshot()
        assert snapshot.latency_p50 == pytest.approx(0.050)
        assert snapshot.latency_p99 == pytest.approx(0.099)
        assert snapshot.latency_mean == pytest.approx(0.0505)

    def test_window_bounds_memory(self):
        recorder = StatsRecorder(window=4)
        for ms in (1, 2, 3, 4, 100, 100, 100, 100):
            recorder.note_completed(ms / 1e3)
        # only the 4 most recent latencies survive
        assert recorder.snapshot().latency_p50 == pytest.approx(0.100)

    def test_throughput_uses_elapsed_since_first_submit(self):
        fake_now = [100.0]
        recorder = StatsRecorder(clock=lambda: fake_now[0])
        recorder.note_submitted(10)
        for _ in range(10):
            recorder.note_completed(0.001)
        fake_now[0] = 102.0                     # 2 seconds later
        snapshot = recorder.snapshot()
        assert snapshot.elapsed_seconds == pytest.approx(2.0)
        assert snapshot.throughput == pytest.approx(5.0)

    def test_empty_recorder_snapshot_is_all_zeros(self):
        snapshot = StatsRecorder().snapshot()
        assert snapshot.submitted == 0
        assert snapshot.throughput == 0.0
        assert snapshot.latency_p99 == 0.0
        assert snapshot.elapsed_seconds == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            StatsRecorder(window=0)

    def test_snapshot_carries_cache_stats(self):
        cache = CacheStats(hits=3, misses=1, size=4, max_size=8,
                           evictions=0, replays=4)
        snapshot = StatsRecorder().snapshot(cache=cache, queue_depth=7)
        assert snapshot.cache.hit_rate == pytest.approx(0.75)
        assert snapshot.cache.reuse_rate == pytest.approx(7 / 8)
        assert snapshot.queue_depth == 7

    def test_as_dict_is_json_ready(self):
        recorder = StatsRecorder()
        recorder.note_submitted()
        recorder.note_completed(0.5)
        payload = recorder.snapshot().as_dict()
        assert payload["completed"] == 1
        assert payload["latency_p50_ms"] == pytest.approx(500.0)
        assert isinstance(payload["cache_hit_rate"], float)

    def test_thread_safety_no_lost_counts(self):
        recorder = StatsRecorder(window=100_000)
        per_thread = 500

        def worker():
            for _ in range(per_thread):
                recorder.note_submitted()
                recorder.note_completed(0.001)
                recorder.note_batch(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = recorder.snapshot()
        assert snapshot.submitted == 8 * per_thread
        assert snapshot.completed == 8 * per_thread
        assert snapshot.batches == 8 * per_thread


class TestServerStats:
    def test_in_flight_accounting(self):
        cache = CacheStats(hits=0, misses=0, size=0, max_size=0,
                           evictions=0, replays=0)
        stats = ServerStats(
            submitted=10, completed=6, failed=1, rejected=2, batches=3,
            mean_batch_size=2.0, elapsed_seconds=1.0, throughput=6.0,
            latency_mean=0.01, latency_p50=0.01, latency_p95=0.02,
            latency_p99=0.03, queue_depth=3, cache=cache)
        assert stats.in_flight == 3
