"""Regression tests: serving stats must ``json.dumps`` round-trip.

The ``stats`` RPC of :mod:`repro.serve.protocol` serves
``ServerStats.as_dict()`` verbatim, and the CI perf artifacts serialize the
loadgen reports — so a numpy scalar smuggled into any ``as_dict`` (e.g. by
``round(np.float64(...))``, which *preserves* the numpy type) is a
production crash.  :func:`repro.serve.stats.json_ready` is the guard; these
tests pin it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.cache import CacheStats
from repro.serve.stats import (
    ServerStats,
    SessionFrameStats,
    StatsRecorder,
    json_ready,
)


class TestJsonReady:
    def test_coerces_numpy_scalars(self):
        coerced = json_ready({
            "i": np.int64(7), "f": np.float64(0.5), "b": np.bool_(True),
            "nested": {"g": np.float32(1.5)},
            "plain": "text",
        })
        assert coerced == {"i": 7, "f": 0.5, "b": True,
                           "nested": {"g": 1.5}, "plain": "text"}
        assert type(coerced["i"]) is int
        assert type(coerced["f"]) is float
        assert type(coerced["b"]) is bool
        json.dumps(coerced)

    def test_numpy_scalars_are_what_json_rejects(self):
        # the failure mode the guard exists for: np.bool_/np.float32 are
        # not JSON-serializable (np.float64 sneaks through as a float
        # subclass on some versions, booleans never do)
        with pytest.raises(TypeError):
            json.dumps({"flag": np.bool_(True)})


class TestServerStatsJsonRoundTrip:
    def _snapshot_with_numpy_inputs(self) -> ServerStats:
        """Feed the recorder numpy scalars the way a timing loop might."""
        recorder = StatsRecorder()
        recorder.note_submitted()
        recorder.note_completed(np.float64(0.25))
        recorder.note_batch(int(np.int64(1)))
        recorder.note_session_opened()
        recorder.note_session_frame("s00000", np.float64(0.125))
        cache = CacheStats(hits=int(np.int64(3)), misses=1, size=4,
                           max_size=8, evictions=0, replays=2)
        return recorder.snapshot(cache=cache, queue_depth=2,
                                 sessions_open=1)

    def test_as_dict_json_dumps_round_trips(self):
        payload = self._snapshot_with_numpy_inputs().as_dict()
        rebuilt = json.loads(json.dumps(payload))
        assert rebuilt == payload

    def test_as_dict_includes_cache_and_session_detail(self):
        payload = self._snapshot_with_numpy_inputs().as_dict()
        assert payload["cache_size"] == 4
        assert payload["cache_max_size"] == 8
        assert payload["cache_evictions"] == 0
        assert payload["sessions"]["s00000"]["frames"] == 1
        assert payload["sessions"]["s00000"]["latency_p50_ms"] == \
            pytest.approx(125.0)

    def test_session_frame_stats_as_dict_round_trips(self):
        entry = SessionFrameStats(session_id="s00001", frames=3,
                                  latency_mean=np.float64(0.010),
                                  latency_p50=np.float64(0.009),
                                  latency_p95=np.float64(0.020))
        payload = entry.as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_wire_round_trip_preserves_the_snapshot(self):
        from repro.serve.protocol import server_stats_from_wire

        snapshot = self._snapshot_with_numpy_inputs()
        payload = json.loads(json.dumps(snapshot.as_dict()))
        rebuilt = server_stats_from_wire(payload)
        assert rebuilt.submitted == snapshot.submitted
        assert rebuilt.completed == snapshot.completed
        assert rebuilt.cache.hits == snapshot.cache.hits
        assert rebuilt.cache.max_size == snapshot.cache.max_size
        assert rebuilt.latency_p50 == pytest.approx(snapshot.latency_p50,
                                                    abs=5e-7)
        assert set(rebuilt.sessions) == set(snapshot.sessions)
        assert rebuilt.sessions["s00000"].frames == \
            snapshot.sessions["s00000"].frames


class TestShardIdAttribution:
    """``shard_id`` attributes a snapshot to a cluster shard — ``None``
    for an in-process server, stamped by ``NetworkServer``."""

    def _snapshot(self) -> ServerStats:
        recorder = StatsRecorder()
        recorder.note_submitted()
        recorder.note_completed(0.01)
        cache = CacheStats(hits=0, misses=1, size=1, max_size=8,
                           evictions=0, replays=0)
        return recorder.snapshot(cache=cache, queue_depth=0,
                                 sessions_open=0)

    def test_in_process_snapshot_has_no_shard_id(self):
        snapshot = self._snapshot()
        assert snapshot.shard_id is None
        payload = snapshot.as_dict()
        assert "shard_id" in payload
        assert payload["shard_id"] is None
        json.dumps(payload)

    def test_shard_id_survives_the_wire_round_trip(self):
        import dataclasses

        from repro.serve.protocol import server_stats_from_wire

        stamped = dataclasses.replace(self._snapshot(),
                                      shard_id="127.0.0.1:7095")
        payload = json.loads(json.dumps(stamped.as_dict()))
        rebuilt = server_stats_from_wire(payload)
        assert rebuilt.shard_id == "127.0.0.1:7095"

    def test_none_shard_id_survives_the_wire_round_trip(self):
        from repro.serve.protocol import server_stats_from_wire

        payload = json.loads(json.dumps(self._snapshot().as_dict()))
        assert server_stats_from_wire(payload).shard_id is None
