"""Tests for the Server's stream-session surface (SessionManager)."""

import threading
import time

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.api.session import SessionClosedError
from repro.api.types import StreamFrameResult
from repro.core.temporal import BacklightSmoother
from repro.imaging.image import Image
from repro.serve import (
    Server,
    ServerOverloadedError,
    SessionManager,
    run_stream_load,
    stream_report_table,
)


@pytest.fixture(scope="module")
def clip():
    """A deterministic 8-frame clip with a plateau cut in the middle."""
    frames = []
    for index in range(8):
        level = 60 if index < 4 else 190
        pixels = np.full((32, 32), level, dtype=np.int64)
        pixels[index % 32, :] = min(level + 5, 255)
        frames.append(Image(pixels, name=f"sframe{index:02d}"))
    return frames


@pytest.fixture
def server(pipeline):
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                    max_delay=0.001)
    yield server
    server.close(wait=True)


class TestServerSessions:
    def test_feed_resolves_to_stream_frame_results(self, server, clip):
        with server.open_session(10.0) as session:
            outcomes = [session.submit(frame).result(timeout=30.0)
                        for frame in clip]
        assert all(isinstance(outcome, StreamFrameResult)
                   for outcome in outcomes)
        assert outcomes[0].scene_change

    def test_served_session_matches_engine_session(self, pipeline, server,
                                                   clip):
        reference_engine = Engine(HEBSAlgorithm(pipeline))
        with reference_engine.open_session(10.0) as reference:
            expected = [reference.submit(frame) for frame in clip]
        with server.open_session(10.0) as session:
            actual = [session.submit(frame).result(timeout=30.0)
                      for frame in clip]
        for want, got in zip(expected, actual):
            assert got.applied_backlight == want.applied_backlight
            assert got.requested_backlight == want.requested_backlight
            assert got.scene_change == want.scene_change
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)

    def test_pipelined_submits_resolve_in_display_order(self, pipeline,
                                                        server, clip):
        """A client may submit the whole clip without awaiting: futures
        resolve in order and the temporal trace equals the paced run."""
        reference_engine = Engine(HEBSAlgorithm(pipeline))
        with reference_engine.open_session(10.0) as reference:
            expected = [reference.submit(frame).applied_backlight
                        for frame in clip]
        with server.open_session(10.0) as session:
            futures = [session.submit(frame) for frame in clip]
            actual = [future.result(timeout=30.0).applied_backlight
                      for future in futures]
        assert actual == expected

    def test_session_queue_bound_backpressure(self, pipeline, clip):
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1,
                        session_queue=2, max_delay=0.2)
        with server:
            with server.open_session(10.0) as session:
                futures = [session.submit(clip[0])]       # in flight
                futures.append(session.submit(clip[1]))   # queued 1
                futures.append(session.submit(clip[2]))   # queued 2
                with pytest.raises(ServerOverloadedError):
                    session.submit(clip[3])               # queue full
                for future in futures:
                    future.result(timeout=30.0)

    def test_closed_session_rejects_and_fails_queued_frames(self, server,
                                                            clip):
        session = server.open_session(10.0)
        first = session.submit(clip[0])
        queued = [session.submit(frame) for frame in clip[1:4]]
        session.close()
        with pytest.raises(SessionClosedError):
            session.submit(clip[4])
        first.result(timeout=30.0)      # the in-flight frame still lands
        failures = 0
        for future in queued:
            try:
                future.result(timeout=30.0)
            except SessionClosedError:
                failures += 1
        assert failures > 0             # queued-behind frames were abandoned

    def test_session_cap_raises_overloaded(self, pipeline):
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1,
                        max_sessions=2)
        with server:
            first = server.open_session(10.0)
            second = server.open_session(10.0)
            with pytest.raises(ServerOverloadedError):
                server.open_session(10.0)
            first.close()
            third = server.open_session(10.0)    # capacity freed
            assert server.session_count == 2
            second.close()
            third.close()

    def test_per_session_options_forwarded(self, server, clip):
        with server.open_session(
                10.0, smoother=BacklightSmoother(initial=0.6,
                                                 max_step=0.05)) as session:
            outcome = session.submit(clip[0]).result(timeout=30.0)
        assert abs(outcome.applied_backlight - 0.6) <= 0.05 + 1e-9

    def test_recorded_latency_includes_session_queue_wait(self, pipeline,
                                                          clip):
        """Regression: frames pumped out of the session queue used to be
        re-stamped at pump time, so the recorded latency missed the wait
        behind their predecessors — exactly the overload signal the
        per-session telemetry exists to surface."""
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1,
                        max_delay=0.001)
        with server:
            with server.open_session(10.0) as session:
                submitted = time.perf_counter()
                futures = [session.submit(frame) for frame in clip]
                for future in futures:
                    future.result(timeout=30.0)
                client_seen = time.perf_counter() - submitted
            stats = server.stats()
        recorded = stats.sessions[session.id]
        # the last frame waited behind every predecessor, so the window's
        # worst latency must be of the order of the whole run, not of one
        # frame's compute leg
        assert recorded.latency_p95 >= 0.5 * client_seen

    def test_stats_count_sessions_and_frames(self, server, clip):
        with server.open_session(10.0) as session:
            for frame in clip[:4]:
                session.submit(frame).result(timeout=30.0)
            live = server.stats()
            assert live.sessions_open == 1
            assert session.id in live.sessions
        stats = server.stats()
        assert stats.sessions_opened == 1
        assert stats.sessions_closed == 1
        assert stats.sessions_open == 0
        assert stats.session_frames == 4
        per_session = stats.sessions[session.id]
        assert per_session.frames == 4
        assert per_session.latency_p95 >= per_session.latency_p50 >= 0.0
        payload = stats.as_dict()
        assert payload["session_frames"] == 4
        assert payload["sessions_opened"] == 1

    def test_server_close_closes_sessions(self, pipeline, clip):
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=1)
        session = server.open_session(10.0)
        session.submit(clip[0]).result(timeout=30.0)
        server.close(wait=True)
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.submit(clip[1])

    def test_scene_gated_fast_path_through_the_server(self, pipeline,
                                                      server, clip):
        """Fast-path sessions ride the coalescer's non-batch lane: steady
        frames replay the held solution, and the outcome still matches a
        plain engine-side fast-path session."""
        frames = [clip[0]] * 4 + [clip[4]] * 4
        reference_engine = Engine(HEBSAlgorithm(pipeline))
        with reference_engine.open_session(
                10.0, scene_gated_solve=True) as reference:
            expected = [reference.submit(frame) for frame in frames]
        with server.open_session(10.0, scene_gated_solve=True) as session:
            actual = [session.submit(frame).result(timeout=30.0)
                      for frame in frames]
        assert [outcome.reused for outcome in actual] \
            == [outcome.reused for outcome in expected]
        assert any(outcome.reused for outcome in actual)
        for want, got in zip(expected, actual):
            assert got.applied_backlight == want.applied_backlight
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)
        assert session.stats().reused > 0

    def test_sessions_interleave_with_oneshot_traffic(self, server, clip,
                                                      lena):
        with server.open_session(10.0) as session:
            frame_future = session.submit(clip[0])
            oneshot_future = server.submit(lena, 10.0)
            assert isinstance(frame_future.result(timeout=30.0),
                              StreamFrameResult)
            oneshot_future.result(timeout=30.0)


class TestTTLEviction:
    def _manager(self, pipeline, clock, ttl=10.0):
        engine = Engine(HEBSAlgorithm(pipeline))
        server = Server(engine=engine, workers=1)
        manager = SessionManager(engine, server._coalescer,
                                 session_ttl=ttl, clock=clock)
        return server, manager

    def test_idle_sessions_are_reaped(self, pipeline):
        now = [0.0]
        server, manager = self._manager(pipeline, lambda: now[0])
        with server:
            idle = manager.open(10.0)
            now[0] = 11.0
            assert manager.sweep() == 1
            assert manager.open_count == 0
            assert idle.closed
            with pytest.raises(SessionClosedError):
                manager.feed(idle, None)

    def test_active_sessions_survive_the_sweep(self, pipeline, clip):
        now = [0.0]
        server, manager = self._manager(pipeline, lambda: now[0])
        with server:
            active = manager.open(10.0)
            now[0] = 9.0
            manager.feed(active, clip[0]).result(timeout=30.0)
            now[0] = 11.0   # 2s after the last frame: within the TTL
            assert manager.sweep() == 0
            assert not active.closed
            manager.close(active)

    def test_open_runs_the_sweep(self, pipeline):
        now = [0.0]
        server, manager = self._manager(pipeline, lambda: now[0])
        with server:
            stale = manager.open(10.0)
            now[0] = 50.0
            fresh = manager.open(10.0)      # opening sweeps the stale one
            assert stale.closed
            assert manager.open_count == 1
            manager.close(fresh)

    def test_ttl_none_disables_eviction(self, pipeline):
        now = [0.0]
        server, manager = self._manager(pipeline, lambda: now[0], ttl=None)
        with server:
            session = manager.open(10.0)
            now[0] = 1e9
            assert manager.sweep() == 0
            assert not session.closed
            manager.close(session)


class TestStreamLoadGenerator:
    def test_run_stream_load_reports(self, server, clip):
        report = run_stream_load(server, [clip[:4]] * 3, 10.0)
        assert report.sessions == 3
        assert report.frames == 12
        assert report.errors == 0
        assert len(report.latencies) == 12
        assert len(report.traces) == 3
        assert all(len(trace) == 4 for trace in report.traces.values())
        assert report.worst_step() <= 0.05 + 1e-9
        assert report.throughput > 0
        assert set(report.session_p95()) == set(report.traces)
        payload = report.as_dict()
        assert payload["sessions"] == 3
        assert payload["server_session_frames"] == 12

    def test_stream_report_table_renders(self, server, clip):
        report = run_stream_load(server, [clip[:3]] * 2, 10.0)
        rendered = stream_report_table(report, serial_seconds=1.0).render()
        assert "sessions" in rendered
        assert "speedup vs serial" in rendered

    def test_empty_workloads_rejected(self, server, clip):
        with pytest.raises(ValueError):
            run_stream_load(server, [], 10.0)
        with pytest.raises(ValueError):
            run_stream_load(server, [clip, []], 10.0)


class TestConcurrentSessions:
    def test_many_sessions_keep_their_own_temporal_state(self, pipeline,
                                                         server, clip):
        """8 concurrent sessions with different smoothers: every trace
        matches its own single-threaded reference, proving no cross-session
        state leakage through the shared batches."""
        steps = [0.03, 0.05, 0.08, 0.1] * 2
        references = []
        for max_step in steps:
            engine = Engine(HEBSAlgorithm(pipeline))
            with engine.open_session(
                    10.0,
                    smoother=BacklightSmoother(max_step=max_step)) as ref:
                references.append([ref.submit(frame).applied_backlight
                                   for frame in clip])

        traces = [None] * len(steps)
        errors = []

        def client(index: int) -> None:
            try:
                with server.open_session(
                        10.0, smoother=BacklightSmoother(
                            max_step=steps[index])) as session:
                    traces[index] = [
                        session.submit(frame).result(timeout=60.0)
                        .applied_backlight for frame in clip]
            except Exception as exc:   # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(len(steps))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for reference, trace in zip(references, traces):
            assert trace == reference
