"""Tests for the multi-client load generator and its report."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.serve import Server, run_load
from repro.serve.loadgen import report_table


@pytest.fixture
def workload(small_suite):
    return list(small_suite.values()) * 3      # 12 requests, 4 distinct


class TestRunLoad:
    def test_all_requests_complete(self, pipeline, workload):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            report = run_load(server, workload, 10.0, clients=4)
        assert report.requests == len(workload)
        assert report.errors == 0
        assert len(report.latencies) == len(workload)
        assert report.throughput > 0.0
        assert report.latency_p99 >= report.latency_p50 > 0.0

    def test_results_indexed_by_workload_position(self, pipeline, workload):
        reference = Engine(HEBSAlgorithm(pipeline))
        expected = [reference.process(image, 10.0) for image in workload]
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            report = run_load(server, workload, 10.0, clients=3)
        assert sorted(report.results) == list(range(len(workload)))
        for index, want in enumerate(expected):
            got = report.results[index]
            assert np.array_equal(want.output.pixels, got.output.pixels)

    def test_single_client_degenerates_to_serial(self, pipeline, small_suite):
        images = list(small_suite.values())
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=1) as server:
            report = run_load(server, images, 10.0, clients=1)
        assert report.errors == 0
        assert report.requests == len(images)

    def test_invalid_arguments_rejected(self, pipeline, lena):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=1) as server:
            with pytest.raises(ValueError, match="clients"):
                run_load(server, [lena], 10.0, clients=0)
            with pytest.raises(ValueError, match="at least one image"):
                run_load(server, [], 10.0)

    def test_report_serializes_to_json_ready_dict(self, pipeline, workload):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            report = run_load(server, workload, 10.0, clients=4)
        payload = report.as_dict()
        assert payload["requests"] == len(workload)
        assert payload["errors"] == 0
        assert "server_cache_reuse_rate" in payload


class TestReportTable:
    def test_table_renders_headline_rows(self, pipeline, workload):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            report = run_load(server, workload, 10.0, clients=2)
        rendered = report_table(report).render()
        assert "throughput (req/s)" in rendered
        assert "latency p99 (ms)" in rendered
        assert "speedup" not in rendered

    def test_table_with_serial_baseline_adds_speedup(self, pipeline,
                                                     workload):
        with Server(engine=Engine(HEBSAlgorithm(pipeline)),
                    workers=2) as server:
            report = run_load(server, workload, 10.0, clients=2)
        rendered = report_table(report, serial_seconds=12.0).render()
        assert "serial baseline (s)" in rendered
        assert "speedup vs serial" in rendered


class TestMixedDisplayClasses:
    """PR 9 traffic diversification: CCFL and OLED requests interleave on
    one server — same cache, same sessions, same worker pool."""

    def test_algorithm_sequence_cycles_by_index(self):
        from repro.serve.loadgen import _algorithm_for

        mixed = ["hebs", "oled-darken"]
        assert [_algorithm_for(mixed, i) for i in range(4)] == [
            "hebs", "oled-darken", "hebs", "oled-darken"]
        assert _algorithm_for("hebs", 3) == "hebs"
        assert _algorithm_for(None, 1) is None
        with pytest.raises(ValueError, match="must not be empty"):
            _algorithm_for([], 0)

    def test_mixed_load_alternates_display_classes(self, workload):
        with Server(engine=Engine(), workers=2) as server:
            report = run_load(server, workload, 10.0, clients=3,
                              algorithm=["hebs", "oled-darken"])
        assert report.errors == 0
        assert report.requests == len(workload)
        for index, result in report.results.items():
            expected = "hebs" if index % 2 == 0 else "oled-darken"
            assert result.algorithm == expected
        emissive = [r for r in report.results.values()
                    if r.algorithm == "oled-darken"]
        assert emissive and all(r.power.ccfl == 0.0 for r in emissive)
        backlit = [r for r in report.results.values()
                   if r.algorithm == "hebs"]
        assert backlit and all(r.power.ccfl > 0.0 for r in backlit)

    def test_mixed_load_matches_serial_reference(self, workload):
        reference = Engine()
        expected = [reference.process(image, 10.0,
                                      algorithm=["hebs", "oled-darken"][i % 2])
                    for i, image in enumerate(workload)]
        with Server(engine=Engine(), workers=2) as server:
            report = run_load(server, workload, 10.0, clients=4,
                              algorithm=["hebs", "oled-darken"])
        for index, want in enumerate(expected):
            got = report.results[index]
            assert np.array_equal(want.output.pixels, got.output.pixels)

    def test_mixed_stream_load(self, small_suite):
        from repro.serve import run_stream_load

        clips = [list(small_suite.values())[:3] for _ in range(4)]
        with Server(engine=Engine(), workers=2) as server:
            report = run_stream_load(server, clips, 10.0,
                                     algorithm=["hebs", "oled-darken"])
        assert report.errors == 0
        classes = set()
        for results in report.outcomes.values():
            names = {frame.result.algorithm for frame in results}
            assert len(names) == 1      # one display class per session
            classes |= names
        assert classes == {"hebs", "oled-darken"}
