"""End-to-end tests for the asyncio network server and the client SDK.

A real :class:`~repro.serve.net.NetworkServer` on a loopback socket, real
clients in the test process: the acceptance surface of the remote API —
bit-identical parity with the in-process engine for ``solve`` /
``process`` / stream sessions, typed overload errors carrying retry-after
across the hop, version negotiation, and close-on-disconnect.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import CompensationAlgorithm, HEBSAlgorithm, create
from repro.api.session import SessionClosedError
from repro.core.histogram import Histogram
from repro.client import AsyncClient, Client
from repro.serve import NetworkServer, Server, ServerOverloadedError, protocol


@pytest.fixture(scope="module")
def net(pipeline):
    """One shared network server over a real engine, on a free port."""
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                    max_delay=0.002)
    network = NetworkServer(server)
    network.start()
    yield network
    network.close()


@pytest.fixture()
def client(net):
    host, port = net.address
    with Client(host=host, port=port, timeout=60.0) as instance:
        yield instance


class TestRemoteParity:
    def test_solve_round_trip_matches_in_process_engine(self, pipeline, net,
                                                        client, lena):
        reference = Engine(HEBSAlgorithm(pipeline)).process(lena, 10.0)
        solution = client.solve(Histogram.of_image(lena), 10.0)
        assert solution.backlight_factor == reference.backlight_factor
        assert solution.transform == reference.transform
        # client-side LUT application reproduces the server-side output
        local = solution.transform.apply(lena.to_grayscale())
        assert np.array_equal(local.pixels, reference.output.pixels)

    def test_compensate_is_bit_identical_to_remote_process(self, client,
                                                           pout):
        applied = client.compensate(pout, 10.0)
        processed = client.process(pout, 10.0)
        assert np.array_equal(applied.output.pixels,
                              processed.output.pixels)
        assert applied.backlight_factor == processed.backlight_factor

    def test_process_round_trip_matches_in_process_engine(self, pipeline,
                                                          client, baboon):
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        remote = client.process(baboon, 10.0)
        assert remote == reference        # dataclass equality: images,
        assert remote.distortion == reference.distortion   # operating point
        assert remote.power_saving == reference.power_saving

    def test_remote_session_matches_in_process_stream_session(
            self, pipeline, client, small_suite):
        frames = list(small_suite.values()) * 2
        reference_engine = Engine(HEBSAlgorithm(pipeline))
        with reference_engine.open_session(10.0) as reference:
            expected = [reference.submit(frame) for frame in frames]
        with client.open_session(10.0) as session:
            actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.applied_backlight == want.applied_backlight
            assert got.requested_backlight == want.requested_backlight
            assert got.scene_change == want.scene_change
            assert got.result == want.result
            assert np.array_equal(got.result.output.pixels,
                                  want.result.output.pixels)

    def test_session_options_cross_the_wire(self, client, small_suite):
        frames = list(small_suite.values())
        with client.open_session(10.0, scene_gated_solve=True,
                                 stability_bins=16) as session:
            outcomes = [session.submit(frame) for frame in frames]
        assert len(outcomes) == len(frames)

    def test_per_request_algorithm_override(self, client, lena):
        assert client.process(lena, 10.0, algorithm="cbcs").algorithm == "cbcs"
        solution = client.solve(lena, 10.0, algorithm="dls-brightness")
        assert solution.algorithm == "dls-brightness"

    def test_stats_rpc_reflects_traffic(self, client, lena):
        client.process(lena, 10.0)
        stats = client.stats()
        assert stats.completed >= 1
        assert stats.submitted >= stats.completed
        payload = client.stats_dict()
        assert payload["completed"] == stats.completed
        assert "sessions" in payload


class TestRemoteErrors:
    def test_bad_budget_raises_value_error(self, client, lena):
        with pytest.raises(ValueError):
            client.process(lena, -1.0)

    def test_unknown_algorithm_is_a_bad_request(self, client, lena):
        with pytest.raises(ValueError, match="unknown algorithm"):
            client.solve(lena, 10.0, algorithm="not-a-technique")

    def test_feeding_an_unknown_session_raises_session_closed(self, net):
        host, port = net.address
        with Client(host=host, port=port) as fresh:
            # a session id this connection never opened: the server answers
            # with a session_closed error frame, not a dropped connection
            response_error = None
            try:
                fresh._request(
                    lambda request_id, binary: protocol.feed_request(
                        request_id, "s99999", _tiny_image(), binary=binary),
                    expected="frame", reconnect=False)
            except SessionClosedError as exc:
                response_error = exc
            assert response_error is not None
            assert "unknown session" in str(response_error)

    def test_submitting_to_a_locally_closed_session_raises(self, net):
        host, port = net.address
        with Client(host=host, port=port) as fresh:
            session = fresh.open_session(10.0)
            session.close()
            with pytest.raises(SessionClosedError):
                session.submit(_tiny_image())

    def test_connection_still_usable_after_an_error(self, client, lena):
        with pytest.raises(ValueError):
            client.process(lena, -5.0)
        assert client.process(lena, 10.0).algorithm == "hebs"


def _tiny_image():
    from repro.imaging.image import Image
    return Image(np.arange(64, dtype=np.uint16).reshape(8, 8) * 4 % 256)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        assert chunk, "server closed the connection mid-frame"
        chunks += chunk
    return chunks


class _GatedAlgorithm(CompensationAlgorithm):
    """Delegates to a real technique but blocks every solve on a gate —
    the deterministic way to wedge the serving queue in tests."""

    name = "gated"
    description = "test-only: blocks solves until released"

    def __init__(self, inner: CompensationAlgorithm,
                 gate: threading.Event, entered: threading.Event) -> None:
        self._inner = inner
        self._gate = gate
        self._entered = entered

    def solve(self, image, max_distortion):
        self._entered.set()
        assert self._gate.wait(timeout=30.0), "test gate never released"
        return self._inner.solve(image, max_distortion)

    def apply_solution(self, solution, image, max_distortion=None):
        return self._inner.apply_solution(solution, image,
                                          max_distortion=max_distortion)


class TestOverloadAcrossTheHop:
    def test_overload_surfaces_as_typed_error_with_retry_after(self):
        gate, entered = threading.Event(), threading.Event()
        algorithm = _GatedAlgorithm(create("dls-brightness"), gate, entered)
        server = Server(engine=Engine(algorithm, cache_size=0),
                        workers=1, max_batch=1, max_delay=0.0, max_pending=1)
        network = NetworkServer(server)
        host, port = network.start()
        try:
            rng = np.random.default_rng(5)
            images = [_random_image(rng) for _ in range(3)]

            def process_in_background(image):
                def run():
                    with Client(host=host, port=port, timeout=30.0) as c:
                        c.process(image, 10.0)
                thread = threading.Thread(target=run, daemon=True)
                thread.start()
                return thread

            # first request occupies the single worker (blocked on the
            # gate), second fills the one-slot pending queue
            first = process_in_background(images[0])
            assert entered.wait(timeout=10.0)
            second = process_in_background(images[1])
            deadline = time.monotonic() + 10.0
            while server.queue_depth < 1:
                assert time.monotonic() < deadline, "queue never filled"
                time.sleep(0.005)

            # the third client sees a typed overload — not a dropped
            # connection — with the server's structured back-off hints
            with Client(host=host, port=port, retries=0,
                        retry_overloaded=False) as third:
                with pytest.raises(ServerOverloadedError) as excinfo:
                    third.process(images[2], 10.0)
                assert excinfo.value.retry_after_seconds is not None
                assert excinfo.value.retry_after_seconds > 0
                assert excinfo.value.queue_depth == 1
                # the connection survived the refusal: release the jam and
                # the same socket serves the retry once the queue drains
                gate.set()
                first.join(timeout=30.0)
                second.join(timeout=30.0)
                result = third.process(images[2], 10.0)
                assert result.algorithm == "dls-brightness"
        finally:
            gate.set()
            network.close()

    def test_client_honors_retry_after_and_succeeds(self):
        gate, entered = threading.Event(), threading.Event()
        algorithm = _GatedAlgorithm(create("dls-brightness"), gate, entered)
        server = Server(engine=Engine(algorithm, cache_size=0),
                        workers=1, max_batch=1, max_delay=0.0, max_pending=1)
        network = NetworkServer(server)
        host, port = network.start()
        try:
            rng = np.random.default_rng(6)
            images = [_random_image(rng) for _ in range(3)]
            first = threading.Thread(
                target=lambda: Client(host=host, port=port).process(
                    images[0], 10.0), daemon=True)
            first.start()
            assert entered.wait(timeout=10.0)
            second = threading.Thread(
                target=lambda: Client(host=host, port=port).process(
                    images[1], 10.0), daemon=True)
            second.start()
            deadline = time.monotonic() + 10.0
            while server.queue_depth < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            # release the jam shortly after the refusal: a retrying client
            # sleeping retry_after then resubmitting must succeed
            threading.Timer(0.05, gate.set).start()
            with Client(host=host, port=port, retries=40,
                        retry_overloaded=True) as patient:
                result = patient.process(images[2], 10.0)
            assert result.algorithm == "dls-brightness"
            first.join(timeout=30.0)
            second.join(timeout=30.0)
        finally:
            gate.set()
            network.close()


def _random_image(rng) -> "object":
    from repro.imaging.image import Image
    return Image(rng.integers(0, 256, size=(16, 16)))


class TestConnectionLifecycle:
    def test_disconnect_closes_the_connections_sessions(self, net):
        host, port = net.address
        client = Client(host=host, port=port)
        client.open_session(10.0)
        assert net.server.session_count >= 1
        before = net.server.session_count
        client.close()
        deadline = time.monotonic() + 10.0
        while net.server.session_count >= before:
            assert time.monotonic() < deadline, \
                "disconnect did not reap the session"
            time.sleep(0.01)

    def test_unsupported_version_is_refused_with_a_typed_error(self, net):
        host, port = net.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(protocol.encode_frame(
                {"type": "hello", "version": 99}))
            header = _recv_exactly(sock, 4)
            payload = _recv_exactly(sock, protocol.frame_length(header))
            frame = protocol.decode_frame(payload)
            assert frame["type"] == "error"
            assert frame["code"] == "unsupported_version"
            # ... and the server hangs up afterwards
            assert sock.recv(1) == b""

    def test_garbage_instead_of_hello_drops_the_connection(self, net):
        host, port = net.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(protocol.encode_frame({"type": "stats", "id": 1}))
            header = _recv_exactly(sock, 4)
            payload = _recv_exactly(sock, protocol.frame_length(header))
            assert protocol.decode_frame(payload)["code"] == \
                "unsupported_version"

    def test_client_reconnects_after_a_lost_connection(self, net, lena):
        host, port = net.address
        client = Client(host=host, port=port, retries=3, backoff=0.01)
        assert client.process(lena, 10.0).algorithm == "hebs"
        # sever the socket under the client; the next call must reconnect
        client._sock.close()
        assert client.process(lena, 10.0).algorithm == "hebs"
        client.close()


class TestProtocolV2:
    def test_default_client_negotiates_v2(self, net, client):
        assert client.protocol_version == 2
        assert "protocol v2" in repr(client)

    def test_capped_client_stays_on_v1(self, net, pipeline, baboon):
        host, port = net.address
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        with Client(host=host, port=port, max_version=1) as v1:
            assert v1.protocol_version == 1
            assert "protocol v1" in repr(v1)
            assert v1.process(baboon, 10.0) == reference

    def test_invalid_max_version_is_rejected_client_side(self):
        with pytest.raises(ValueError, match="max_version"):
            Client(max_version=3)
        with pytest.raises(ValueError, match="max_version"):
            Client(max_version=0)

    def test_v1_and_v2_lanes_are_bit_identical(self, net, pipeline,
                                               small_suite):
        host, port = net.address
        engine = Engine(HEBSAlgorithm(pipeline))
        frames = list(small_suite.values())
        with Client(host=host, port=port, max_version=1) as v1, \
                Client(host=host, port=port) as v2:
            for frame in frames:
                want = engine.process(frame, 10.0)
                assert v1.process(frame, 10.0) == want
                assert v2.process(frame, 10.0) == want

    def test_v2_session_feed_matches_in_process_stream(self, net, pipeline,
                                                       small_suite):
        host, port = net.address
        frames = list(small_suite.values()) * 2
        with Engine(HEBSAlgorithm(pipeline)).open_session(10.0) as reference:
            expected = [reference.submit(frame) for frame in frames]
        with Client(host=host, port=port) as v2:
            assert v2.protocol_version == 2
            with v2.open_session(10.0) as session:
                actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.result == want.result
            assert got.applied_backlight == want.applied_backlight

    def test_v2_ships_fewer_bytes_than_v1(self, net, baboon):
        host, port = net.address

        def traffic(**options):
            with Client(host=host, port=port, **options) as instance:
                instance.process(baboon, 10.0)
                return instance.bytes_sent + instance.bytes_received

        assert traffic() * 3 <= traffic(max_version=1)

    def test_connection_version_counters_in_stats(self, net):
        host, port = net.address
        with Client(host=host, port=port) as v2, \
                Client(host=host, port=port, max_version=1) as v1:
            payload = v2.stats_dict()
            assert payload["connections_v2"] >= 1
            assert payload["connections_v1"] >= 1
            before_v1 = payload["connections_v1"]
            v1.process(_tiny_image(), 10.0)    # keep the v1 client live
        # ... and they are gauges: the counts drop on disconnect
        deadline = time.monotonic() + 10.0
        with Client(host=host, port=port) as probe:
            while probe.stats_dict()["connections_v1"] >= before_v1:
                assert time.monotonic() < deadline, \
                    "v1 connection gauge never dropped"
                time.sleep(0.01)

    def test_disconnected_client_repr(self):
        assert "disconnected" in repr(Client(port=1))


def _handshake(sock: socket.socket, max_version: int = 2) -> dict:
    from repro.serve import wire2

    sock.sendall(protocol.encode_frame(
        protocol.hello_frame(max_version=max_version)))
    header = _recv_exactly(sock, 4)
    return protocol.decode_frame(
        _recv_exactly(sock, protocol.frame_length(header)))


def _exchange_raw(sock: socket.socket, payload: bytes) -> tuple[int, dict]:
    from repro.serve import wire2

    sock.sendall(len(payload).to_bytes(4, "big") + payload)
    header = _recv_exactly(sock, 4)
    return wire2.decode_any(
        _recv_exactly(sock, protocol.frame_length(header)))


class TestMalformedArrayFrames:
    """Satellite regression: a malformed wire array (shape/payload
    mismatch, unrecognized dtype) must come back as a typed bad_request
    error frame and LEAVE THE CONNECTION OPEN — these used to kill the
    connection with a raw numpy exception."""

    def _bad_process_v2(self, *, dtype: str = "|u1",
                        shape=None) -> bytes:
        import json as _json

        descriptor = {"$seg": 0, "dtype": dtype,
                      "shape": [5, 5] if shape is None else shape}
        header = _json.dumps(
            {"type": "process", "id": 31,
             "image": {"pixels": descriptor, "bit_depth": 8, "name": "x"},
             "max_distortion": 10.0, "algorithm": None},
            separators=(",", ":")).encode()
        segment = b"\x00" * 16
        return (b"R2\x02\x00" + len(header).to_bytes(4, "big")
                + (1).to_bytes(2, "big") + len(segment).to_bytes(4, "big")
                + header + segment)

    @pytest.mark.parametrize("kwargs", [
        {"shape": [5, 5]},          # declares 25 bytes, payload has 16
        {"dtype": "V4", "shape": [4]},      # void dtype
        {"shape": [-1]},            # reshape inference
    ])
    def test_v2_bad_array_is_a_bad_request_and_the_socket_survives(
            self, net, kwargs):
        host, port = net.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            assert _handshake(sock)["version"] == 2
            version, frame = _exchange_raw(sock, self._bad_process_v2(
                **kwargs))
            assert version == 2    # the reply travels the request's codec
            assert frame["type"] == "error"
            assert frame["code"] == "bad_request"
            assert frame["id"] == 31
            # the connection is still serving: a well-formed request on
            # the very same socket answers normally
            version, frame = _exchange_raw(
                sock, protocol.encode_frame(protocol.stats_request(32))[4:])
            assert (version, frame["type"]) == (1, "stats")

    def test_v1_bad_array_is_a_bad_request_and_the_socket_survives(
            self, net):
        host, port = net.address
        bad = protocol.process_request(7, _tiny_image(), 10.0)
        bad["image"]["pixels"]["shape"] = [3]    # mismatches the payload
        with socket.create_connection((host, port), timeout=10.0) as sock:
            assert _handshake(sock, max_version=1)["version"] == 1
            version, frame = _exchange_raw(
                sock, protocol.encode_frame(bad)[4:])
            assert (version, frame["type"]) == (1, "error")
            assert frame["code"] == "bad_request"
            assert frame["id"] == 7
            version, frame = _exchange_raw(
                sock, protocol.encode_frame(protocol.stats_request(8))[4:])
            assert frame["type"] == "stats"

    def test_malformed_v2_envelope_is_a_bad_request(self, net):
        host, port = net.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            assert _handshake(sock)["version"] == 2
            # valid prefix, truncated body: still a typed refusal
            version, frame = _exchange_raw(sock, b"R2\x02\x00" + b"\xff" * 8)
            assert frame["type"] == "error"
            assert frame["code"] == "bad_request"


class TestAsyncClient:
    def test_async_client_full_surface(self, net, lena, pout):
        import asyncio

        host, port = net.address

        async def scenario():
            async with AsyncClient(host=host, port=port) as client:
                solution = await client.solve(Histogram.of_image(lena), 10.0)
                applied = await client.compensate(lena, 10.0)
                result = await client.process(lena, 10.0)
                assert solution.backlight_factor == result.backlight_factor
                assert np.array_equal(applied.output.pixels,
                                      result.output.pixels)
                async with await client.open_session(10.0) as session:
                    outcome = await session.submit(pout)
                    assert 0.0 < outcome.applied_backlight <= 1.0
                stats = await client.stats()
                assert stats.completed >= 1

        asyncio.run(scenario())

    def test_many_async_clients_share_the_server(self, net, small_suite):
        import asyncio

        host, port = net.address
        images = list(small_suite.values())

        async def one(image):
            async with AsyncClient(host=host, port=port) as client:
                return await client.process(image, 10.0)

        async def scenario():
            return await asyncio.gather(*(one(image) for image in images))

        results = asyncio.run(scenario())
        assert [r.original for r in results] == \
            [image.to_grayscale() for image in images]

    def test_async_client_negotiates_v2_and_says_so(self, net):
        import asyncio

        host, port = net.address

        async def scenario():
            client = AsyncClient(host=host, port=port)
            assert "disconnected" in repr(client)
            async with client:
                await client.stats()
                assert client.protocol_version == 2
                assert "protocol v2" in repr(client)

        asyncio.run(scenario())

    def test_async_client_can_be_capped_to_v1(self, net, lena, pipeline):
        import asyncio

        host, port = net.address
        reference = Engine(HEBSAlgorithm(pipeline)).process(lena, 10.0)

        async def scenario():
            async with AsyncClient(host=host, port=port,
                                   max_version=1) as client:
                result = await client.process(lena, 10.0)
                assert client.protocol_version == 1
                assert result == reference

        asyncio.run(scenario())

    def test_one_async_client_multiplexes_concurrent_calls(self, net,
                                                           pipeline,
                                                           small_suite):
        import asyncio

        host, port = net.address
        engine = Engine(HEBSAlgorithm(pipeline))
        images = list(small_suite.values()) * 2
        expected = [engine.process(image, 10.0) for image in images]

        async def scenario():
            # ONE connection, many in-flight requests: responses come
            # back in whatever order the server finishes and must be
            # correlated by id, not arrival order
            async with AsyncClient(host=host, port=port) as client:
                results = await asyncio.gather(
                    *(client.process(image, 10.0) for image in images))
                assert client.protocol_version == 2
                return results

        results = asyncio.run(scenario())
        for got, want in zip(results, expected):
            assert got == want
