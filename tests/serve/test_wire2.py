"""Tests for the protocol v2 binary codec (repro.serve.wire2).

The contract under test: a golden byte-pinned frame (the envelope layout
is a wire format, not an implementation detail), bit-exact round-trips
with zero-copy array views, O(header) peek/restamp for the router's
bytes-through path, the v1 transcode fallback, and strict envelope
validation — every malformed frame must surface as ProtocolError, never
a raw struct/numpy exception.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.histogram import Histogram
from repro.serve import protocol, wire2
from repro.serve.protocol import ProtocolError


def _trip(message: dict) -> dict:
    return wire2.decode_message(wire2.encode_message(message))


class TestGoldenFrame:
    def test_golden_frame_bytes(self):
        # pinned hand-assembled envelope: any byte that moves breaks
        # deployed peers
        message = {"type": "demo", "id": 3,
                   "data": np.arange(4, dtype=np.uint8)}
        header = (b'{"type":"demo","id":3,'
                  b'"data":{"$seg":0,"dtype":"|u1","shape":[4]}}')
        want = (b"R2"                          # magic
                + b"\x02"                      # wire version
                + b"\x00"                      # flags
                + len(header).to_bytes(4, "big")
                + (1).to_bytes(2, "big")       # nseg
                + (4).to_bytes(4, "big")       # segment length table
                + header
                + b"\x00\x01\x02\x03")         # raw segment bytes
        assert wire2.encode_message(message) == want

    def test_encode_frame_adds_the_length_prefix(self):
        message = {"type": "stats", "id": 1}
        payload = wire2.encode_message(message)
        frame = wire2.encode_frame(message)
        assert frame == len(payload).to_bytes(4, "big") + payload

    def test_segmentless_frame_is_pure_header(self):
        payload = wire2.encode_message({"type": "stats", "id": 9})
        assert payload[8:10] == b"\x00\x00"    # nseg = 0
        assert json.loads(payload[10:]) == {"type": "stats", "id": 9}

    def test_magic_cannot_collide_with_v1(self):
        # every v1 payload is a JSON object: first byte "{" != "R"
        v1 = protocol.encode_frame(protocol.hello_frame())[4:]
        assert not wire2.is_v2_payload(v1)
        assert wire2.is_v2_payload(wire2.encode_message({"type": "x"}))


class TestRoundTrips:
    def test_arrays_round_trip_bit_exactly(self):
        rng = np.random.default_rng(3)
        for dtype in (np.uint8, np.uint16, np.int32, np.float64):
            array = rng.integers(0, 200, (17, 5)).astype(dtype)
            got = _trip({"type": "demo", "a": array})["a"]
            assert got.dtype == array.dtype
            assert np.array_equal(got, array)

    def test_decoded_arrays_are_zero_copy_readonly_views(self):
        payload = wire2.encode_message(
            {"type": "demo", "a": np.arange(6, dtype=np.uint16)})
        array = wire2.decode_message(payload)["a"]
        assert not array.flags.writeable
        with pytest.raises(ValueError):
            array[0] = 1

    def test_nested_and_listed_arrays(self):
        message = {"type": "demo",
                   "outer": {"inner": np.arange(3, dtype=np.uint8)},
                   "many": [np.zeros(2, dtype=np.float64),
                            np.ones((2, 2), dtype=np.int16)]}
        got = _trip(message)
        assert np.array_equal(got["outer"]["inner"],
                              message["outer"]["inner"])
        assert np.array_equal(got["many"][1], message["many"][1])

    def test_plain_json_leaves_survive_unchanged(self):
        message = {"type": "solve", "id": 5, "algorithm": None,
                   "max_distortion": 10.0, "histogram": {"counts": [1, 2]}}
        assert _trip(message) == message

    def test_process_request_via_both_codecs_decodes_the_same_image(
            self, lena):
        v1 = protocol.process_request(1, lena, 10.0)
        v2 = wire2.decode_message(wire2.encode_message(
            protocol.process_request(1, lena, 10.0, binary=True)))
        a = protocol.image_from_wire(v1["image"])
        b = protocol.image_from_wire(v2["image"])
        assert np.array_equal(a.pixels, b.pixels)
        assert a.bit_depth == b.bit_depth

    def test_binary_image_packs_8bit_pixels_to_one_byte(self, lena):
        v1 = wire2.encode_message(protocol.process_request(1, lena, 10.0))
        v2 = wire2.encode_message(
            protocol.process_request(1, lena, 10.0, binary=True))
        # u8 packing + no base64: >2.5x smaller on the uplink alone (the
        # full >=3x wire gate adds the downlink's omitted original image
        # and lives in benchmarks/test_network.py)
        assert len(v1) >= 2.5 * len(v2)

    def test_empty_array_round_trips(self):
        got = _trip({"type": "demo", "a": np.zeros((0, 4), dtype=np.uint8)})
        assert got["a"].shape == (0, 4)


class TestDecodeAny:
    def test_sniffs_v1(self):
        message = protocol.hello_frame()
        version, got = wire2.decode_any(protocol.encode_frame(message)[4:])
        assert (version, got) == (1, message)

    def test_sniffs_v2(self):
        version, got = wire2.decode_any(
            wire2.encode_message({"type": "stats", "id": 2}))
        assert (version, got) == (2, {"type": "stats", "id": 2})


class TestPeekAndRestamp:
    def test_peek_leaves_descriptors_as_plain_dicts(self):
        payload = wire2.encode_message(
            {"type": "feed", "id": 4, "session_id": "s1",
             "frame": {"pixels": np.arange(4, dtype=np.uint8)}})
        header = wire2.peek(payload)
        assert header["id"] == 4
        assert header["session_id"] == "s1"
        assert header["frame"]["pixels"] == {
            "$seg": 0, "dtype": "|u1", "shape": [4]}

    def test_restamp_rewrites_the_id_and_splices_segments_verbatim(self):
        pixels = np.arange(64, dtype=np.uint8).reshape(8, 8)
        payload = wire2.encode_message(
            {"type": "process", "id": 7, "image": {"pixels": pixels}})
        stamped = wire2.restamp(payload, 99)
        # same trailing segment bytes, byte for byte
        assert stamped[-pixels.nbytes:] == payload[-pixels.nbytes:]
        message = wire2.decode_message(stamped)
        assert message["id"] == 99
        assert np.array_equal(message["image"]["pixels"], pixels)

    def test_restamp_rewrites_the_session_id(self):
        payload = wire2.encode_message(
            {"type": "feed", "id": 1, "session_id": "public",
             "frame": {"pixels": np.arange(3, dtype=np.uint8)}})
        stamped = wire2.restamp(payload, 2, session_id="s00004")
        header = wire2.peek(stamped)
        assert header["id"] == 2
        assert header["session_id"] == "s00004"

    def test_restamp_of_a_segmentless_frame(self):
        payload = wire2.encode_message({"type": "stats", "id": 1})
        assert wire2.peek(wire2.restamp(payload, 42))["id"] == 42


class TestDowngrade:
    def test_downgrade_produces_json_safe_v1_form(self, pout):
        message = wire2.decode_message(wire2.encode_message(
            protocol.process_request(3, pout, 10.0, binary=True)))
        downgraded = wire2.downgrade_message(message)
        json.dumps(downgraded)      # pure JSON: encodable by the v1 codec
        image = protocol.image_from_wire(downgraded["image"])
        assert np.array_equal(image.pixels, pout.pixels)

    def test_downgrade_is_identity_for_arrayless_messages(self, lena):
        message = protocol.solve_request(1, Histogram.of_image(lena), 10.0)
        assert wire2.downgrade_message(message) == message


class TestMalformedEnvelopes:
    def _payload(self) -> bytes:
        return wire2.encode_message(
            {"type": "demo", "id": 1, "a": np.arange(4, dtype=np.uint8)})

    def test_truncated_prefix(self):
        with pytest.raises(ProtocolError, match="truncated"):
            wire2.decode_message(b"R2\x02")

    def test_bad_magic(self):
        payload = b"XX" + self._payload()[2:]
        with pytest.raises(ProtocolError, match="magic"):
            wire2.decode_message(payload)

    def test_unknown_wire_generation(self):
        payload = self._payload()
        with pytest.raises(ProtocolError, match="generation"):
            wire2.decode_message(payload[:2] + b"\x09" + payload[3:])

    def test_segment_table_cut_short(self):
        payload = self._payload()
        with pytest.raises(ProtocolError):
            wire2.decode_message(payload[:11])

    def test_header_cut_short(self):
        payload = self._payload()
        with pytest.raises(ProtocolError):
            wire2.decode_message(payload[:20])

    def test_slack_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="cover"):
            wire2.decode_message(self._payload() + b"\x00")

    def test_missing_segment_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            wire2.decode_message(self._payload()[:-1])

    def test_non_object_header_rejected(self):
        header = b"[1,2]"
        payload = (b"R2\x02\x00" + len(header).to_bytes(4, "big")
                   + b"\x00\x00" + header)
        with pytest.raises(ProtocolError, match="object"):
            wire2.decode_message(payload)

    def test_undecodable_header_rejected(self):
        header = b"{broken"
        payload = (b"R2\x02\x00" + len(header).to_bytes(4, "big")
                   + b"\x00\x00" + header)
        with pytest.raises(ProtocolError, match="header"):
            wire2.decode_message(payload)


class TestMalformedDescriptors:
    def _frame(self, descriptor: dict, segment: bytes) -> bytes:
        header = json.dumps({"type": "demo", "a": descriptor},
                            separators=(",", ":")).encode()
        return (b"R2\x02\x00" + len(header).to_bytes(4, "big")
                + (1).to_bytes(2, "big") + len(segment).to_bytes(4, "big")
                + header + segment)

    def test_segment_index_out_of_range(self):
        frame = self._frame({"$seg": 5, "dtype": "|u1", "shape": [4]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="out of range"):
            wire2.decode_message(frame)

    def test_negative_segment_index(self):
        frame = self._frame({"$seg": -1, "dtype": "|u1", "shape": [4]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="out of range"):
            wire2.decode_message(frame)

    def test_shape_payload_mismatch(self):
        frame = self._frame({"$seg": 0, "dtype": "|u1", "shape": [5]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="payload has 4"):
            wire2.decode_message(frame)

    def test_negative_dimension_rejected(self):
        # -1 would make reshape *infer* a shape the peer never declared
        frame = self._frame({"$seg": 0, "dtype": "|u1", "shape": [-1]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="negative dimension"):
            wire2.decode_message(frame)

    def test_unrecognized_dtype_rejected(self):
        frame = self._frame({"$seg": 0, "dtype": "V4", "shape": [1]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="dtype"):
            wire2.decode_message(frame)

    def test_object_dtype_rejected(self):
        frame = self._frame({"$seg": 0, "dtype": "O", "shape": [1]},
                            b"\x00" * 8)
        with pytest.raises(ProtocolError, match="dtype"):
            wire2.decode_message(frame)

    def test_boolean_dimension_rejected(self):
        frame = self._frame({"$seg": 0, "dtype": "|u1", "shape": [True, 4]},
                            b"\x00" * 4)
        with pytest.raises(ProtocolError, match="non-integer"):
            wire2.decode_message(frame)
