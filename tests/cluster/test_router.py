"""End-to-end tests for the cluster router (repro.cluster.router).

Real ``NetworkServer`` shards on loopback sockets, a real
:class:`~repro.cluster.ClusterRouter` in front, the unmodified client SDK
talking to it: routing by content key, session pinning, health-checked
failover (one-shot RPCs fail over; sessions die with their shard and
surface :class:`SessionClosedError`, never a hang or a silent re-route),
and the aggregated ``stats`` RPC.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.api.session import SessionClosedError
from repro.client import Client, RemoteServerAdapter
from repro.cluster import ClusterRouter
from repro.core.histogram import Histogram
from repro.serve import NetworkServer, Server, ServerOverloadedError
from repro.serve import protocol


def make_shard(pipeline) -> NetworkServer:
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                    max_delay=0.002)
    network = NetworkServer(server)
    network.start()
    return network


@pytest.fixture()
def shards(pipeline):
    servers = [make_shard(pipeline) for _ in range(3)]
    yield servers
    for server in servers:
        server.close()


@pytest.fixture()
def router(shards):
    addresses = [f"{host}:{port}" for host, port in
                 (shard.address for shard in shards)]
    # slow periodic probe: tests drive health transitions via probe_now()
    with ClusterRouter(addresses, health_interval=30.0,
                       health_timeout=2.0, request_timeout=20.0) as instance:
        yield instance


@pytest.fixture()
def client(router):
    host, port = router.address
    with Client(host=host, port=port, timeout=20.0) as instance:
        yield instance


class TestRoutingParity:
    def test_solve_through_router_matches_direct_shard(self, pipeline,
                                                       shards, client, lena):
        host, port = shards[0].address
        with Client(host=host, port=port) as direct:
            want = direct.solve(Histogram.of_image(lena), 10.0)
        got = client.solve(Histogram.of_image(lena), 10.0)
        assert got.backlight_factor == want.backlight_factor
        assert got.transform == want.transform

    def test_process_through_router_matches_in_process_engine(
            self, pipeline, client, baboon):
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        remote = client.process(baboon, 10.0)
        assert np.array_equal(remote.output.pixels,
                              reference.output.pixels)
        assert remote.backlight_factor == reference.backlight_factor

    def test_duplicates_route_to_one_shard(self, client, router, lena):
        for _ in range(6):
            client.solve(Histogram.of_image(lena), 10.0)
        routed = router.counters.routed
        assert sum(routed.values()) == 6
        # cache affinity: every duplicate landed on the key's owner
        assert max(routed.values()) == 6

    def test_routing_key_is_content_not_transport(self, client, router,
                                                  lena):
        # solve-by-histogram and process-by-image of the SAME frame
        # must land on the same shard: the key is the histogram
        # signature, however the request arrives
        client.solve(Histogram.of_image(lena), 10.0)
        client.process(lena, 10.0)
        assert len(router.counters.routed) == 1

    def test_distinct_images_spread_over_shards(self, client, router,
                                                small_suite):
        rng = np.random.default_rng(7)
        from repro.imaging.image import Image
        for _ in range(12):
            pixels = rng.integers(0, 256, (16, 16), dtype=np.uint8)
            client.solve(Histogram.of_image(Image(pixels)), 10.0)
        assert sum(router.counters.routed.values()) == 12
        assert len(router.counters.routed) >= 2

    def test_router_identifies_itself_in_stats(self, client):
        payload = client.stats_dict()
        assert payload["shard_id"] == "cluster"
        assert payload["cluster"]["shards_configured"] == 3
        assert payload["cluster"]["shards_up"] == 3


class TestSessions:
    def test_remote_session_through_router(self, pipeline, client,
                                           small_suite):
        frames = list(small_suite.values())
        with Engine(HEBSAlgorithm(pipeline)).open_session(10.0) as reference:
            expected = [reference.submit(frame) for frame in frames]
        with client.open_session(10.0) as session:
            actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.result.backlight_factor == \
                want.result.backlight_factor

    def test_sessions_balance_over_shards(self, client, router):
        sessions = [client.open_session(10.0) for _ in range(3)]
        try:
            assert sum(router.counters.sessions_routed.values()) == 3
            # least-loaded placement: 3 sessions over 3 shards = 1 each
            assert set(router.counters.sessions_routed.values()) == {1}
        finally:
            for session in sessions:
                session.close()
        assert sum(router._session_load.values()) == 0

    def test_session_ids_are_namespaced_by_shard(self, client, router):
        sessions = [client.open_session(10.0) for _ in range(3)]
        try:
            ids = {session.id for session in sessions}
            assert len(ids) == 3
            # shards allocate ids independently (all start at s00000);
            # the router's shard-index prefix keeps them distinct
            assert {name.split(":")[1] for name in ids} == {"s00000"}
        finally:
            for session in sessions:
                session.close()

    def test_close_is_idempotent_through_router(self, client, lena):
        session = client.open_session(10.0)
        session.submit(lena)
        session.close()
        session.close()
        with pytest.raises(SessionClosedError):
            session.submit(lena)

    def test_disconnect_closes_sessions_on_the_shards(self, router, shards,
                                                      lena):
        host, port = router.address
        client = Client(host=host, port=port, timeout=20.0)
        session = client.open_session(10.0)
        session.submit(lena)
        shard_index = int(session.id.split(":")[0])
        client.close()
        # close-on-disconnect cascades: the shard's own session count
        # drains once the router notices the client is gone
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if shards[shard_index].server.session_count == 0:
                break
            time.sleep(0.02)
        assert shards[shard_index].server.session_count == 0
        assert sum(router._session_load.values()) == 0


class TestFailover:
    def test_one_shot_rpcs_fail_over_past_a_dead_shard(self, client, router,
                                                       shards, small_suite):
        frames = list(small_suite.values())
        for frame in frames:
            client.solve(Histogram.of_image(frame), 10.0)
        # kill a shard that owns at least one of the keys, so the walk
        # actually has something to fail over
        address = max(router.counters.routed,
                      key=router.counters.routed.get)
        victim = router.shards.index(address)
        shards[victim].close()
        # every request still answers; the dead shard's keys hop to the
        # next shard on the ring walk
        for frame in frames:
            solution = client.solve(Histogram.of_image(frame), 10.0)
            assert 0.0 < solution.backlight_factor <= 1.0
        assert not router.health[address].up

    def test_failover_is_recorded(self, client, router, shards, lena):
        client.solve(Histogram.of_image(lena), 10.0)
        owner = max(router.counters.routed, key=router.counters.routed.get)
        index = router.shards.index(owner)
        shards[index].close()
        client.solve(Histogram.of_image(lena), 10.0)
        assert router.counters.failovers >= 1

    def test_probe_marks_down_and_back_up(self, router, shards, pipeline):
        victim = router.shards[1]
        host, port = shards[1].address
        shards[1].close()
        for _ in range(2):
            router.probe_now()
        assert not router.health[victim].up
        assert router.health[victim].markdowns == 1
        # resurrect a shard on the same port: the probe marks it up
        server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2,
                        max_delay=0.002)
        revived = NetworkServer(server, host=host, port=port)
        revived.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                router.probe_now()
                if router.health[victim].up:
                    break
                time.sleep(0.05)
            assert router.health[victim].up
            assert router.health[victim].markups == 1
        finally:
            shards[1] = revived    # fixture teardown closes it

    def test_feed_to_a_dead_shard_raises_session_closed(self, client,
                                                        router, shards,
                                                        lena):
        session = client.open_session(10.0)
        session.submit(lena)
        shard_index = int(session.id.split(":")[0])
        shards[shard_index].close()
        # a session is NEVER silently re-routed: its stream state died
        # with the shard, so the client hears SessionClosedError fast
        with pytest.raises(SessionClosedError):
            session.submit(lena)
        address = router.shards[shard_index]
        assert not router.health[address].up

    def test_open_session_avoids_down_shards(self, client, router, shards,
                                             lena):
        shards[2].close()
        router.probe_now()
        router.probe_now()
        down = router.shards[2]
        assert not router.health[down].up
        sessions = [client.open_session(10.0) for _ in range(4)]
        try:
            for session in sessions:
                session.submit(lena)
            assert router.counters.sessions_routed.get(down, 0) == 0
        finally:
            for session in sessions:
                session.close()

    def test_all_shards_down_surfaces_overloaded_with_retry_after(
            self, pipeline, lena):
        shard = make_shard(pipeline)
        addresses = [f"{shard.address[0]}:{shard.address[1]}"]
        with ClusterRouter(addresses, health_interval=30.0,
                           request_timeout=5.0) as router:
            host, port = router.address
            # retries=0: surface the typed error instead of retrying
            with Client(host=host, port=port, retries=0) as client:
                client.solve(Histogram.of_image(lena), 10.0)
                shard.close()
                with pytest.raises(ServerOverloadedError) as excinfo:
                    client.solve(Histogram.of_image(lena), 10.0)
                # retry-after-aware: the hint spans a probe interval so
                # the SDK's retry lands after a mark-up had a chance
                assert excinfo.value.retry_after_seconds >= \
                    protocol.DEFAULT_RETRY_AFTER


class TestAdapterCloseRace:
    def test_adapter_close_raced_with_in_flight_feeds(self, router, shards,
                                                      small_suite):
        """Satellite: RemoteServerAdapter.close() racing in-flight feeds
        during shard failover must surface SessionClosedError (or a
        clean connection teardown) — never hang, never re-route."""
        host, port = router.address
        frames = list(small_suite.values()) * 4
        adapter = RemoteServerAdapter(f"{host}:{port}", timeout=20.0)
        handle = adapter.open_session(10.0)
        errors: list[BaseException] = []

        def feeder() -> None:
            try:
                for frame in frames:
                    handle.submit(frame).result(timeout=20.0)
            except (SessionClosedError, ConnectionError, OSError,
                    RuntimeError) as exc:
                errors.append(exc)

        shard_index = int(handle.id.split(":")[0])
        thread = threading.Thread(target=feeder)
        thread.start()
        time.sleep(0.05)            # let some feeds get in flight
        shards[shard_index].close()
        adapter.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "feeder hung on adapter close"

    def test_loadgen_drives_the_router_like_a_single_server(self, router,
                                                            small_suite):
        from repro.serve.loadgen import run_load

        host, port = router.address
        workload = list(small_suite.values()) * 3
        with RemoteServerAdapter(f"{host}:{port}", timeout=20.0) as remote:
            report = run_load(remote, workload, 10.0, clients=3)
        assert report.requests == len(workload)
        assert report.errors == 0
        assert report.stats.shard_id == "cluster"


class TestAggregatedStats:
    def test_stats_rpc_merges_all_shards(self, client, router, small_suite):
        for frame in small_suite.values():
            client.process(frame, 10.0)
        payload = client.stats_dict()
        assert payload["completed"] == \
            sum(shard["completed"] for shard in payload["shards"].values())
        assert payload["completed"] >= len(small_suite)
        assert set(payload["cluster"]["routed"]) <= set(router.shards)

    def test_client_stats_object_works_against_a_router(self, client, lena):
        client.process(lena, 10.0)
        stats = client.stats()
        assert stats.shard_id == "cluster"
        assert stats.completed >= 1

    def test_shard_payloads_carry_their_shard_id(self, client):
        payload = client.stats_dict()
        for shard_id, shard in payload["shards"].items():
            assert shard["shard_id"] == shard_id

    def test_stats_skip_dead_shards(self, client, router, shards):
        shards[0].close()
        router.probe_now()
        payload = client.stats_dict()
        assert len(payload["shards"]) == 2
        assert payload["cluster"]["shards_up"] == 2
        assert payload["cluster"]["shards_down"] == [router.shards[0]]


class TestProtocolV2Routing:
    """The bytes-through fast path: v2 frames between v2 peers cross the
    router with only an O(header) restamp, and a v1-capped shard fleet
    gets transcoded frames — both bit-identical to the in-process
    engine."""

    def test_v2_process_takes_the_fast_path(self, pipeline, client, router,
                                            baboon):
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        assert client.protocol_version == 2
        remote = client.process(baboon, 10.0)
        assert remote == reference
        assert router.counters.frames_fast_path >= 1
        assert router.counters.frames_transcoded == 0

    def test_v2_solve_takes_the_fast_path(self, client, router, lena):
        solution = client.solve(Histogram.of_image(lena), 10.0)
        assert 0.0 < solution.backlight_factor <= 1.0
        assert router.counters.frames_fast_path >= 1

    def test_v2_session_feeds_take_the_fast_path(self, pipeline, client,
                                                 router, small_suite):
        frames = list(small_suite.values())
        with Engine(HEBSAlgorithm(pipeline)).open_session(10.0) as local:
            expected = [local.submit(frame) for frame in frames]
        with client.open_session(10.0) as session:
            actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.result == want.result
        assert router.counters.frames_fast_path >= len(frames)

    def test_v1_client_through_a_v2_fleet(self, pipeline, router, baboon):
        # cross-version matrix: the router speaks v1 toward the client
        # and v2 toward the shards; outputs stay bit-identical
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        host, port = router.address
        with Client(host=host, port=port, max_version=1,
                    timeout=20.0) as v1:
            assert v1.protocol_version == 1
            assert v1.process(baboon, 10.0) == reference

    def test_mixed_clients_share_the_router(self, pipeline, router,
                                            small_suite):
        engine = Engine(HEBSAlgorithm(pipeline))
        host, port = router.address
        with Client(host=host, port=port, max_version=1) as v1, \
                Client(host=host, port=port) as v2:
            for frame in small_suite.values():
                want = engine.process(frame, 10.0)
                assert v1.process(frame, 10.0) == want
                assert v2.process(frame, 10.0) == want

    def test_routing_counters_ride_the_stats_rpc(self, client, router,
                                                 lena):
        client.process(lena, 10.0)
        payload = client.stats_dict()
        cluster = payload["cluster"]
        assert cluster["frames_fast_path"] == \
            router.counters.frames_fast_path
        assert cluster["frames_transcoded"] == \
            router.counters.frames_transcoded
        assert payload["connections_v2"] >= 1   # shard-side gauges summed

    def test_router_never_accepts_the_shm_lane(self, router, lena):
        # the pixels must cross the network to a shard; a same-host claim
        # against the *router* is meaningless and is never echoed
        host, port = router.address
        with Client(host=host, port=port, shm=True, timeout=20.0) as c:
            assert c._shm is None or not c._shm.active
            assert c.process(lena, 10.0).algorithm == "hebs"

    def test_pipelined_batch_through_the_router(self, pipeline, client,
                                                small_suite):
        engine = Engine(HEBSAlgorithm(pipeline))
        images = list(small_suite.values())
        with client.pipeline() as batch:
            replies = [batch.process(image, 10.0) for image in images]
        for image, reply in zip(images, replies):
            assert reply.result() == engine.process(image, 10.0)


class TestV1ShardFleet:
    """A router pinned to v1 toward its shards (`shard_max_version=1`)
    transcodes v2 client traffic instead of forwarding bytes."""

    @pytest.fixture()
    def v1_router(self, shards):
        addresses = [f"{host}:{port}" for host, port in
                     (shard.address for shard in shards)]
        with ClusterRouter(addresses, health_interval=30.0,
                           health_timeout=2.0, request_timeout=20.0,
                           shard_max_version=1) as instance:
            yield instance

    def test_v2_client_traffic_is_transcoded(self, pipeline, v1_router,
                                             baboon):
        reference = Engine(HEBSAlgorithm(pipeline)).process(baboon, 10.0)
        host, port = v1_router.address
        with Client(host=host, port=port, timeout=20.0) as v2:
            assert v2.protocol_version == 2
            assert v2.process(baboon, 10.0) == reference
        assert v1_router.counters.frames_transcoded >= 1
        assert v1_router.counters.frames_fast_path == 0

    def test_sessions_cross_the_version_boundary(self, pipeline, v1_router,
                                                 small_suite):
        frames = list(small_suite.values())
        with Engine(HEBSAlgorithm(pipeline)).open_session(10.0) as local:
            expected = [local.submit(frame) for frame in frames]
        host, port = v1_router.address
        with Client(host=host, port=port, timeout=20.0) as v2:
            with v2.open_session(10.0) as session:
                actual = [session.submit(frame) for frame in frames]
        for got, want in zip(actual, expected):
            assert got.result == want.result
            assert got.applied_backlight == want.applied_backlight

    def test_links_report_the_negotiated_shard_version(self, v1_router,
                                                       lena):
        host, port = v1_router.address
        with Client(host=host, port=port, timeout=20.0) as v2:
            v2.solve(Histogram.of_image(lena), 10.0)
        assert all(link.version == 1
                   for link in v1_router._links.values()
                   if link is not None)


class TestRouterSurface:
    def test_router_hello_carries_router_identity(self, router):
        import socket

        host, port = router.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(protocol.encode_frame(protocol.hello_frame()))
            header = sock.recv(protocol.HEADER_BYTES)
            frame = sock.recv(protocol.frame_length(header))
            hello = protocol.decode_frame(frame)
        assert hello["type"] == "hello"
        assert hello["shard_id"].startswith("router@")

    def test_router_answers_health_itself(self, router):
        import socket

        host, port = router.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(protocol.encode_frame(protocol.hello_frame()))
            header = sock.recv(protocol.HEADER_BYTES)
            sock.recv(protocol.frame_length(header))
            sock.sendall(protocol.encode_frame(protocol.health_request(1)))
            header = sock.recv(protocol.HEADER_BYTES)
            frame = sock.recv(protocol.frame_length(header))
            health = protocol.decode_frame(frame)
        assert health["type"] == "health"
        assert health["shard_id"].startswith("router@")
        assert health["status"] == "ok"

    def test_rejects_empty_and_duplicate_membership(self):
        with pytest.raises(ValueError):
            ClusterRouter([])
        with pytest.raises(ValueError):
            ClusterRouter(["127.0.0.1:1", "127.0.0.1:1"])

    def test_overloaded_probe_counts_as_alive(self):
        # an overloaded error frame is proof of life, not a failure
        health_response = protocol.error_response(
            0, ServerOverloadedError("full", queue_depth=9,
                                     retry_after_seconds=0.1))
        assert health_response["code"] == "overloaded"
