"""CLI tests for the serving entry points that bind real sockets.

Subprocess tests: the readiness lines of ``repro serve --port 0`` and
``repro cluster`` are a contract — scripts (and the CI smoke test) parse
them to learn the actual bound port, so they must carry the real port
and be flushed before the first connection attempt.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]

READY_SERVE = re.compile(r"serving on ([\d.]+):(\d+) \(protocol v1\+v2\)")
READY_CLUSTER = re.compile(
    r"cluster serving on ([\d.]+):(\d+) over (\d+) shards? "
    r"\(protocol v1\+v2\)")


def spawn(*args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO))


def await_ready(process: subprocess.Popen, pattern: re.Pattern,
                timeout: float = 60.0) -> re.Match:
    """Read stdout lines until the readiness line appears (the line must
    be flushed — an unflushed buffer would hang right here)."""
    deadline = time.monotonic() + timeout
    lines: list[str] = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = pattern.search(line)
        if match:
            return match
    process.kill()
    raise AssertionError(f"no readiness line in {lines!r}")


def stop(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10.0)


class TestServeEphemeralPort:
    def test_port_zero_prints_the_actual_bound_port(self, lena):
        from repro.client import Client
        from repro.core.histogram import Histogram

        process = spawn("serve", "--port", "0", "--no-warmup")
        try:
            match = await_ready(process, READY_SERVE)
            host, port = match.group(1), int(match.group(2))
            # --port 0 delegates picking to the kernel: the line must
            # carry the ephemeral port, not the 0 placeholder
            assert port != 0
            with Client(host=host, port=port, timeout=30.0) as client:
                solution = client.solve(Histogram.of_image(lena), 10.0)
            assert 0.0 < solution.backlight_factor <= 1.0
        finally:
            stop(process)


class TestClusterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["cluster", "--shards", "127.0.0.1:7095,127.0.0.1:7097"])
        assert args.shards == "127.0.0.1:7095,127.0.0.1:7097"
        assert args.port == 0
        assert args.replicas == 64
        assert args.markdown_after == 2

    def test_shards_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])
        capsys.readouterr()

    def test_cluster_routes_to_spawned_shards(self, lena, pout):
        from repro.client import Client
        from repro.core.histogram import Histogram

        shard_processes = [spawn("serve", "--port", "0", "--no-warmup")
                           for _ in range(2)]
        router_process = None
        try:
            addresses = []
            for process in shard_processes:
                match = await_ready(process, READY_SERVE)
                addresses.append(f"{match.group(1)}:{match.group(2)}")
            router_process = spawn("cluster", "--shards",
                                   ",".join(addresses), "--port", "0")
            match = await_ready(router_process, READY_CLUSTER)
            host, port = match.group(1), int(match.group(2))
            assert int(match.group(3)) == 2
            with Client(host=host, port=port, timeout=30.0) as client:
                solution = client.solve(Histogram.of_image(lena), 10.0)
                assert 0.0 < solution.backlight_factor <= 1.0
                result = client.process(pout, 10.0)
                assert result.output.shape == pout.shape
                payload = client.stats_dict()
                assert payload["shard_id"] == "cluster"
                assert payload["cluster"]["shards_configured"] == 2
        finally:
            if router_process is not None:
                stop(router_process)
            for process in shard_processes:
                stop(process)
