"""Tests for the consistent-hash ring (repro.cluster.ring).

The properties that make the cluster work are all here: deterministic
placement (restarted routers must agree), near-uniform key distribution
(virtual nodes), the 1/N remap bound under membership change, and the
walk-equals-failover consistency that lets the router skip a down shard
without remapping anyone else's keys.
"""

from __future__ import annotations

import pytest

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing

SHARDS = ["10.0.0.1:7095", "10.0.0.2:7095", "10.0.0.3:7095",
          "10.0.0.4:7095"]


def keys(count: int) -> list[bytes]:
    return [f"key-{index}".encode() for index in range(count)]


class TestConstruction:
    def test_starts_with_the_given_nodes(self):
        ring = HashRing(SHARDS)
        assert len(ring) == 4
        assert ring.nodes == tuple(sorted(SHARDS))
        assert all(shard in ring for shard in SHARDS)

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_default_replicas(self):
        assert HashRing(SHARDS).replicas == DEFAULT_REPLICAS

    def test_add_is_idempotent(self):
        ring = HashRing(SHARDS)
        ring.add(SHARDS[0])
        assert len(ring) == 4

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            HashRing(SHARDS).remove("not-a-member")

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.node_for(b"anything") is None
        assert list(ring.preference(b"anything")) == []


class TestPlacement:
    def test_deterministic_across_instances(self):
        # ring placement must agree between router restarts: blake2b,
        # not the per-process-salted hash()
        first = HashRing(SHARDS)
        second = HashRing(list(reversed(SHARDS)))
        for key in keys(200):
            assert first.node_for(key) == second.node_for(key)

    def test_str_and_bytes_keys_agree(self):
        ring = HashRing(SHARDS)
        assert ring.node_for("some-key") == ring.node_for(b"some-key")

    def test_distribution_is_roughly_uniform(self):
        ring = HashRing(SHARDS)
        counts = {shard: 0 for shard in SHARDS}
        for key in keys(4000):
            counts[ring.node_for(key)] += 1
        # with 64 vnodes each shard's share stays within ~2x of fair
        for count in counts.values():
            assert 0.5 * 1000 < count < 2.0 * 1000

    def test_preference_yields_each_node_once(self):
        ring = HashRing(SHARDS)
        for key in keys(50):
            order = list(ring.preference(key))
            assert sorted(order) == sorted(SHARDS)
            assert order[0] == ring.node_for(key)


class TestMembershipChange:
    def test_removal_remaps_only_the_removed_nodes_keys(self):
        full = HashRing(SHARDS)
        gone = SHARDS[1]
        reduced = HashRing([shard for shard in SHARDS if shard != gone])
        for key in keys(1000):
            before = full.node_for(key)
            after = reduced.node_for(key)
            if before == gone:
                # the dead shard's keys fall to the next on the walk
                assert after != gone
            else:
                assert after == before

    def test_remap_fraction_close_to_one_over_n(self):
        full = HashRing(SHARDS)
        gone = SHARDS[0]
        sample = keys(4000)
        remapped = sum(full.node_for(key) == gone for key in sample)
        # expected 1/4; allow generous slack for hash variance
        assert remapped / len(sample) < 0.5

    def test_walk_equals_failover(self):
        # skipping a down node on the walk == removing it from the ring;
        # this identity is what makes router failover consistent
        full = HashRing(SHARDS)
        down = SHARDS[2]
        reduced = HashRing([shard for shard in SHARDS if shard != down])
        for key in keys(500):
            walked = full.node_for(key, alive=lambda node: node != down)
            assert walked == reduced.node_for(key)

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(SHARDS)
        before = {key: ring.node_for(key) for key in keys(300)}
        ring.add("10.0.0.9:7095")
        ring.remove("10.0.0.9:7095")
        assert {key: ring.node_for(key) for key in before} == before

    def test_node_for_with_no_alive_nodes(self):
        ring = HashRing(SHARDS)
        assert ring.node_for(b"key", alive=lambda node: False) is None
