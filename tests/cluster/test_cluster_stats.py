"""Tests for cluster-wide stats aggregation (repro.cluster.stats)."""

from __future__ import annotations

import json

import pytest

from repro.cluster.stats import ClusterCounters, aggregate_stats
from repro.serve.protocol import server_stats_from_wire


def shard_payload(shard_id: str, *, completed: int = 10, hits: int = 6,
                  misses: int = 4, throughput: float = 100.0,
                  latency_mean: float = 5.0, elapsed: float = 2.0,
                  sessions: dict | None = None) -> dict:
    """A minimal but shape-faithful ``ServerStats.as_dict`` payload."""
    return {
        "shard_id": shard_id,
        "submitted": completed, "completed": completed, "failed": 0,
        "rejected": 0, "batches": completed, "mean_batch_size": 1.0,
        "queue_depth": 0,
        "elapsed_seconds": elapsed, "throughput_rps": throughput,
        "latency_mean_ms": latency_mean, "latency_p50_ms": latency_mean,
        "latency_p95_ms": latency_mean * 2, "latency_p99_ms": latency_mean * 3,
        "sessions_open": len(sessions or {}), "sessions_opened": 0,
        "sessions_closed": 0, "sessions_evicted": 0, "session_frames": 0,
        "cache_hits": hits, "cache_misses": misses, "cache_replays": 0,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "cache_reuse_rate": hits / (hits + misses) if hits + misses else 0.0,
        "cache_size": misses, "cache_max_size": 512, "cache_evictions": 0,
        "sessions": dict(sessions or {}),
    }


class TestAggregateStats:
    def test_counters_sum_across_shards(self):
        merged = aggregate_stats({
            "a": shard_payload("a", completed=10, hits=6, misses=4),
            "b": shard_payload("b", completed=30, hits=24, misses=6),
        })
        assert merged["completed"] == 40
        assert merged["cache_hits"] == 30
        assert merged["cache_misses"] == 10
        assert merged["shard_id"] == "cluster"

    def test_rates_recomputed_from_summed_counters(self):
        # NOT the mean of per-shard rates: a busy shard weighs more
        merged = aggregate_stats({
            "a": shard_payload("a", hits=0, misses=10),
            "b": shard_payload("b", hits=90, misses=0),
        })
        assert merged["cache_hit_rate"] == pytest.approx(0.9)

    def test_throughput_sums_and_elapsed_maxes(self):
        merged = aggregate_stats({
            "a": shard_payload("a", throughput=100.0, elapsed=2.0),
            "b": shard_payload("b", throughput=150.0, elapsed=5.0),
        })
        assert merged["throughput_rps"] == pytest.approx(250.0)
        assert merged["elapsed_seconds"] == pytest.approx(5.0)

    def test_latency_is_completion_weighted(self):
        merged = aggregate_stats({
            "a": shard_payload("a", completed=10, latency_mean=10.0),
            "b": shard_payload("b", completed=30, latency_mean=2.0),
        })
        assert merged["latency_mean_ms"] == pytest.approx(4.0)

    def test_sessions_namespaced_by_shard(self):
        # shard-local session ids collide across shards ("s00000" on
        # both); the merged view must keep them attributable
        entry = {"frames": 3, "latency_mean_ms": 1.0}
        merged = aggregate_stats({
            "a": shard_payload("a", sessions={"s00000": entry}),
            "b": shard_payload("b", sessions={"s00000": entry}),
        })
        assert set(merged["sessions"]) == {"a/s00000", "b/s00000"}

    def test_per_shard_payloads_preserved(self):
        merged = aggregate_stats({"a": shard_payload("a", completed=7)})
        assert merged["shards"]["a"]["completed"] == 7

    def test_cluster_key_carries_router_info(self):
        merged = aggregate_stats({}, cluster={"shards_up": 2})
        assert merged["cluster"] == {"shards_up": 2}

    def test_empty_cluster_aggregates_to_zeros(self):
        merged = aggregate_stats({})
        assert merged["completed"] == 0
        assert merged["cache_hit_rate"] == 0.0
        assert merged["elapsed_seconds"] == 0.0

    def test_json_round_trips(self):
        merged = aggregate_stats({
            "a": shard_payload("a"), "b": shard_payload("b"),
        }, cluster={"routed": {"a": 3}})
        assert json.loads(json.dumps(merged)) == merged

    def test_existing_clients_can_rebuild_server_stats(self):
        # the contract that keeps `Client.stats()` and loadtest working
        # against a router unchanged: the merged payload is a superset
        # of a single server's
        merged = aggregate_stats({
            "a": shard_payload("a", completed=10),
            "b": shard_payload("b", completed=20),
        })
        rebuilt = server_stats_from_wire(merged)
        assert rebuilt.completed == 30
        assert rebuilt.shard_id == "cluster"


class TestClusterCounters:
    def test_as_dict_shape(self):
        counters = ClusterCounters()
        counters.routed["b"] += 2
        counters.routed["a"] += 1
        counters.sessions_routed["a"] += 1
        counters.failovers += 1
        payload = counters.as_dict()
        assert payload == {"routed": {"a": 1, "b": 2},
                           "sessions_routed": {"a": 1},
                           "failovers": 1,
                           "frames_fast_path": 0,
                           "frames_transcoded": 0}
        assert list(payload["routed"]) == ["a", "b"]
        json.dumps(payload)
