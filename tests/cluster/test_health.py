"""Tests for the shard mark-down/mark-up state machine
(repro.cluster.health)."""

from __future__ import annotations

import pytest

from repro.cluster.health import ShardHealth


class TestMarkdown:
    def test_starts_up(self):
        assert ShardHealth("shard").up

    def test_single_probe_failure_keeps_it_up(self):
        # one dropped packet must not evict a warm cache's keyspace
        health = ShardHealth("shard", markdown_after=2)
        assert health.note_failure() is False
        assert health.up

    def test_consecutive_probe_failures_mark_down(self):
        health = ShardHealth("shard", markdown_after=2)
        health.note_failure()
        assert health.note_failure() is True
        assert not health.up
        assert health.markdowns == 1

    def test_success_resets_the_streak(self):
        health = ShardHealth("shard", markdown_after=2)
        health.note_failure()
        health.note_success()
        health.note_failure()
        assert health.up

    def test_hard_failure_marks_down_immediately(self):
        # live-traffic connection failure: don't wait for probes
        health = ShardHealth("shard", markdown_after=5)
        assert health.note_failure(hard=True) is True
        assert not health.up

    def test_failures_while_down_do_not_recount(self):
        health = ShardHealth("shard", markdown_after=1)
        health.note_failure()
        assert health.note_failure() is False
        assert health.markdowns == 1

    def test_markdown_after_validated(self):
        with pytest.raises(ValueError):
            ShardHealth("shard", markdown_after=0)


class TestMarkup:
    def test_success_marks_back_up(self):
        health = ShardHealth("shard", markdown_after=1)
        health.note_failure()
        assert health.note_success() is True
        assert health.up
        assert health.markups == 1

    def test_success_while_up_is_not_a_transition(self):
        health = ShardHealth("shard")
        assert health.note_success() is False
        assert health.markups == 0

    def test_flapping_counts_every_transition(self):
        health = ShardHealth("shard", markdown_after=1)
        for _ in range(3):
            health.note_failure()
            health.note_success()
        assert health.markdowns == 3
        assert health.markups == 3
