"""End-to-end integration tests spanning the whole stack.

These tests wire together pieces that the unit tests exercise separately:
the HEBS pipeline programming the LCD controller, the frame-path simulation
confirming the perceived image matches the pipeline's transformed image, and
a small end-to-end "photo viewer" scenario comparing HEBS against the
baselines on the same budget.
"""

import numpy as np
import pytest

from repro.baselines.cbcs import CBCS
from repro.baselines.dls import DLSContrast
from repro.display.controller import FrameBuffer, LCDController
from repro.imaging.io import read_image, write_image
from repro.quality.distortion import effective_distortion
from repro.quality.uqi import universal_quality_index


class TestPipelineDrivesController:
    def test_programmed_controller_reproduces_pipeline_output(self, pipeline, lena):
        """Loading the HEBS driver program into the LCD controller and
        displaying the *original* frame must emit the luminance of the
        pipeline's transformed image at the dimmed backlight."""
        result = pipeline.process_with_range(lena, 150)
        controller = LCDController()
        controller.load_program(result.driver_program)
        frame = controller.display(lena)

        assert frame.backlight_factor == pytest.approx(result.backlight_factor)
        # The driver program boosts pixel values by 1/beta (Eq. 10) and the
        # backlight is dimmed to beta, so the emitted luminance equals the
        # range-compressed image Lambda(F) at full backlight.
        expected_luminance = result.transformed.as_float()
        assert np.abs(frame.luminance - expected_luminance).mean() < 0.02
        # and the power the controller accounts matches the pipeline's number
        assert frame.ccfl_power == pytest.approx(result.power.ccfl, rel=1e-6)

    def test_controller_luminance_close_to_original(self, pipeline, lena):
        """The whole point of compensation: the dimmed, compensated display
        keeps the image recognizable.  Histogram equalization does remap the
        absolute luminances (a brightness/contrast change the HVS adapts to),
        so the invariants checked are a bounded mean luminance error and a
        near-perfect rank (structural) correlation with the original."""
        result = pipeline.process_with_range(lena, 200)
        controller = LCDController()
        controller.load_program(result.driver_program)
        frame = controller.display(lena)
        original_luminance = lena.as_float()
        assert np.abs(frame.luminance - original_luminance).mean() < 0.2
        correlation = np.corrcoef(frame.luminance.reshape(-1),
                                  original_luminance.reshape(-1))[0, 1]
        assert correlation > 0.95

    def test_video_stream_through_frame_buffer(self, pipeline, small_suite):
        """Push several frames through the buffer with per-frame programs."""
        controller = LCDController()
        buffer = FrameBuffer(capacity=len(small_suite))
        for image in small_suite.values():
            buffer.push(image)
        total_power = 0.0
        while not buffer.is_empty:
            frame_image = buffer.pop()
            result = pipeline.process_adaptive(frame_image, 15.0)
            controller.load_program(result.driver_program)
            displayed = controller.display(frame_image)
            total_power += displayed.total_power
            assert displayed.backlight_factor < 1.0
        controller.reset()
        reference_power = sum(
            LCDController().display(image).total_power
            for image in small_suite.values())
        assert total_power < reference_power


class TestCrossMethodComparison:
    def test_hebs_beats_baselines_on_the_same_image_and_budget(self, pipeline,
                                                               lena):
        budget = 10.0
        hebs = pipeline.process_adaptive(lena, budget)
        dls = DLSContrast().optimize(lena, budget)
        cbcs = CBCS().optimize(lena, budget)
        assert hebs.distortion <= budget + 1e-6
        assert hebs.power_saving_percent >= dls.power_saving_percent - 1e-6
        assert hebs.power_saving_percent >= cbcs.power_saving_percent - 1e-6

    def test_all_methods_preserve_visual_quality_at_small_budget(self, pipeline,
                                                                 lena):
        budget = 5.0
        hebs = pipeline.process_adaptive(lena, budget)
        dls = DLSContrast().optimize(lena, budget)
        assert universal_quality_index(lena, hebs.transformed) > 0.5
        assert universal_quality_index(lena, dls.perceived) > 0.5


class TestFileRoundTripScenario:
    def test_process_an_image_loaded_from_disk(self, tmp_path, pipeline, lena):
        """A user workflow: write a PGM, read it back, run HEBS, save the
        transformed output, and verify the saved file."""
        source_path = tmp_path / "photo.pgm"
        write_image(lena, source_path)
        loaded = read_image(source_path)
        assert loaded == lena

        result = pipeline.process(loaded, 10.0)
        output_path = tmp_path / "photo_hebs.pgm"
        write_image(result.transformed, output_path)

        reread = read_image(output_path)
        assert reread == result.transformed
        assert effective_distortion(loaded, reread) == pytest.approx(
            result.distortion, abs=1e-6)
