"""Tests for the command-line interface (python -m repro)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.imaging.image import Image
from repro.imaging.io import read_image, write_image


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["benchmarks"])
        assert args.command == "benchmarks"

    def test_process_defaults(self):
        args = build_parser().parse_args(["process", "lena"])
        assert args.budget == 10.0
        assert args.adaptive is False
        assert args.output is None

    def test_experiment_choices_validated(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "not-an-experiment"])
        capsys.readouterr()

    def test_missing_command_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()


class TestBenchmarksCommand:
    def test_lists_all_nineteen(self, capsys):
        assert main(["benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "lena" in output
        assert "testpat" in output
        assert output.count("128x128") == 19


class TestProcessCommand:
    def test_process_builtin_benchmark(self, capsys):
        assert main(["process", "pout", "--budget", "15"]) == 0
        output = capsys.readouterr().out
        assert "backlight factor" in output
        assert "power saving %" in output
        assert "reference voltages" in output

    def test_process_file_and_write_output(self, tmp_path, capsys, lena):
        source = tmp_path / "input.pgm"
        write_image(lena, source)
        destination = tmp_path / "output.pgm"
        assert main(["process", str(source), "--budget", "12",
                     "--adaptive", "--output", str(destination)]) == 0
        capsys.readouterr()
        transformed = read_image(destination)
        assert transformed.shape == lena.shape
        assert transformed.dynamic_range() <= lena.dynamic_range()

    def test_unknown_source_errors(self, capsys):
        with pytest.raises(SystemExit, match="neither a benchmark"):
            main(["process", "/does/not/exist.pgm"])
        capsys.readouterr()


class TestAlgorithmsCommand:
    def test_lists_registered_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        for name in ("hebs", "hebs-adaptive", "hebs-clipped", "hebs-bbhe",
                     "dls-brightness", "dls-contrast", "cbcs",
                     "oled-darken", "oled-darken-clipped"):
            assert name in output

    def test_display_class_column(self, capsys):
        """The table pins the display-class column from registry metadata."""
        assert main(["algorithms"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = next(line for line in lines if line.startswith("name"))
        assert header.split()[:3] == ["name", "display", "description"]
        rows = {line.split()[0]: line.split()[1]
                for line in lines if line and line[0].isalpha()
                and not line.startswith("name")
                and not line.startswith("Registered")}
        assert rows["hebs"] == "backlit"
        assert rows["cbcs"] == "backlit"
        assert rows["oled-darken"] == "emissive"
        assert rows["oled-darken-clipped"] == "emissive"


class TestProcessAlgorithmSelection:
    def test_process_with_baseline_algorithm(self, capsys):
        assert main(["process", "pout", "--algorithm", "cbcs"]) == 0
        output = capsys.readouterr().out
        assert "cbcs" in output
        assert "backlight factor" in output
        # the conventional driver has no reference-voltage program
        assert "reference voltages" not in output

    def test_adaptive_flag_maps_to_adaptive_algorithm(self, capsys):
        assert main(["process", "pout", "--adaptive"]) == 0
        output = capsys.readouterr().out
        assert "hebs-adaptive" in output

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["process", "pout",
                                       "--algorithm", "nope"])
        capsys.readouterr()

    def test_adaptive_conflicts_with_non_hebs_algorithm(self, capsys):
        with pytest.raises(SystemExit, match="HEBS-specific"):
            main(["process", "pout", "--algorithm", "cbcs", "--adaptive"])
        capsys.readouterr()

    def test_negative_budget_clean_error(self, capsys):
        with pytest.raises(SystemExit, match="non-negative"):
            main(["process", "pout", "--budget", "-5"])
        capsys.readouterr()


class TestBatchCommand:
    def test_batch_with_repeat_exercises_cache(self, capsys):
        assert main(["batch", "lena", "peppers", "--repeat", "2"]) == 0
        output = capsys.readouterr().out
        assert output.count("lena") == 2
        assert "solution cache" in output
        assert "replay" in output       # the repeats replay the shared solves
        assert "reuse rate" in output

    def test_batch_defaults_to_full_suite(self, capsys):
        assert main(["batch", "--budget", "20"]) == 0
        output = capsys.readouterr().out
        assert "19 images" in output


class TestServeCommand:
    def test_serve_runs_workload_and_prints_stats(self, capsys):
        assert main(["serve", "--requests", "8", "--workers", "2",
                     "--no-warmup"]) == 0
        output = capsys.readouterr().out
        assert "served 8 requests" in output
        assert "Server statistics snapshot" in output
        assert "throughput_rps" in output
        assert "latency_p99_ms" in output

    def test_serve_warmup_reported(self, capsys):
        assert main(["serve", "--requests", "4", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "warm-up" in output
        assert "pre-solved" in output

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 4
        assert args.requests == 64
        assert args.warmup is True
        assert args.max_batch == 32


class TestLoadtestCommand:
    def test_loadtest_prints_report(self, capsys):
        assert main(["loadtest", "--requests", "8", "--clients", "2",
                     "--workers", "2", "--no-warmup"]) == 0
        output = capsys.readouterr().out
        assert "Load test: 8 requests from 2 clients" in output
        assert "throughput (req/s)" in output
        assert "latency p99 (ms)" in output
        assert "speedup" not in output      # no baseline requested

    def test_loadtest_with_baseline_and_json(self, tmp_path, capsys):
        import json

        destination = tmp_path / "report.json"
        assert main(["loadtest", "--requests", "6", "--clients", "2",
                     "--workers", "2", "--baseline", "--no-warmup",
                     "--json", str(destination)]) == 0
        output = capsys.readouterr().out
        assert "speedup vs serial" in output
        payload = json.loads(destination.read_text())
        assert payload["requests"] == 6
        assert "speedup_vs_serial" in payload
        assert "latency_p99_ms" in payload

    def test_loadtest_stream_mode(self, capsys):
        assert main(["loadtest", "--streams", "2", "--frames", "4",
                     "--workers", "2", "--no-warmup"]) == 0
        output = capsys.readouterr().out
        assert "Stream load test: 8 frames from 2 concurrent sessions" in output
        assert "throughput (frames/s)" in output
        assert "worst backlight step" in output

    def test_loadtest_stream_mode_json(self, tmp_path, capsys):
        import json

        destination = tmp_path / "stream.json"
        assert main(["loadtest", "--streams", "2", "--frames", "3",
                     "--workers", "2", "--no-warmup",
                     "--json", str(destination)]) == 0
        payload = json.loads(destination.read_text())
        assert payload["sessions"] == 2
        assert payload["frames"] == 6
        assert "worst_backlight_step" in payload
        assert "server_session_frames" in payload

    def test_loadtest_stream_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.streams == 0            # one-shot mode by default
        assert args.frames == 24
        assert args.max_sessions == 64
        assert args.session_ttl == 300.0


class TestCharacterizeCommand:
    def test_characterize_directory(self, tmp_path, capsys):
        rng = np.random.default_rng(3)
        for index in range(3):
            image = Image(rng.integers(0, 256, size=(32, 32)),
                          name=f"img{index}")
            write_image(image, tmp_path / f"img{index}.pgm")
        assert main(["characterize", "--directory", str(tmp_path),
                     "--measure", "rmse"]) == 0
        output = capsys.readouterr().out
        assert "Distortion characteristic curve" in output
        assert "Budget -> minimum admissible dynamic range" in output

    def test_empty_directory_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="no supported images"):
            main(["characterize", "--directory", str(tmp_path)])
        capsys.readouterr()


class TestExperimentCommand:
    def test_fig2_series(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "grayscale_spreading" in output

    def test_fig6a_coefficients(self, capsys):
        assert main(["experiment", "fig6a"]) == 0
        output = capsys.readouterr().out
        assert "Cs=" in output or "Cs" in output


class TestOLEDCommands:
    def test_process_oled_darken(self, capsys):
        assert main(["process", "baboon", "--algorithm", "oled-darken"]) == 0
        output = capsys.readouterr().out
        assert "oled-darken" in output
        assert "darkening range" in output
        assert "emissive power" in output
        assert "driver overhead" in output
        assert "reference voltages" not in output

    def test_policy_flags_derive_budget(self, capsys):
        assert main(["process", "pout", "--ambient-lux", "10000",
                     "--battery", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "budget policy:" in output
        assert "distortion budget" in output

    def test_policy_charging_drops_battery_term(self, capsys):
        assert main(["process", "pout", "--battery", "0.05",
                     "--charging"]) == 0
        drained = capsys.readouterr().out
        assert main(["process", "pout", "--battery", "0.05"]) == 0
        draining = capsys.readouterr().out

        def budget_of(output):
            line = next(l for l in output.splitlines()
                        if l.startswith("budget policy:"))
            return float(line.split("->")[1].split("%")[0].strip())

        assert budget_of(drained) < budget_of(draining)

    def test_serve_rejects_algorithm_list(self, capsys):
        with pytest.raises(SystemExit, match="single algorithm"):
            main(["serve", "--requests", "4",
                  "--algorithm", "hebs,oled-darken"])
        capsys.readouterr()

    def test_loadtest_rejects_unknown_algorithm(self, capsys):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["loadtest", "--requests", "4",
                  "--algorithm", "hebs,nope"])
        capsys.readouterr()

    def test_loadtest_mixed_display_classes(self, capsys):
        assert main(["loadtest", "--requests", "8", "--clients", "2",
                     "--workers", "2", "--no-warmup",
                     "--algorithm", "hebs,oled-darken"]) == 0
        output = capsys.readouterr().out
        assert "Load test: 8 requests from 2 clients" in output
