"""Tests for Engine.process_stream — the temporal (video) entry point."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.core.temporal import BacklightSmoother, SceneChangeDetector
from repro.imaging.image import Image


@pytest.fixture(scope="module")
def clip(request):
    """A deterministic 12-frame fade between two flat luminance plateaus."""
    frames = []
    for index in range(12):
        level = 40 if index < 6 else 200
        noise = np.full((32, 32), level, dtype=np.int64)
        noise[index % 32, :] = min(level + 5, 255)
        frames.append(Image(noise, name=f"frame{index:02d}"))
    return frames


class TestProcessStream:
    def test_yields_one_result_per_frame(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(clip, 10.0))
        assert len(results) == len(clip)

    def test_is_lazy(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        stream = engine.process_stream(clip, 10.0)
        assert engine.processed == 0        # nothing ran yet
        next(stream)
        assert engine.processed == 1

    def test_first_frame_is_a_scene_change(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(clip, 10.0))
        assert results[0].scene_change

    def test_cut_detected_mid_stream(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(clip, 10.0))
        assert results[6].scene_change      # the 40 -> 200 plateau jump

    def test_backlight_slew_limited(self, pipeline, clip):
        max_step = 0.05
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=max_step)))
        trace = np.array([frame.applied_backlight for frame in results])
        # re-derivation quantizes beta to the grayscale-range grid, so the
        # programmed step can exceed the smoother limit by one level
        assert np.abs(np.diff(trace)).max() <= max_step + 1.0 / 255 + 1e-9

    def test_smoothing_lags_the_request(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=0.05)))
        # dark plateau requests aggressive dimming immediately; the applied
        # factor must descend gradually from the initial full backlight
        assert results[0].requested_backlight < results[0].applied_backlight

    def test_repeated_frames_hit_the_cache(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        list(engine.process_stream(clip, 10.0))
        assert engine.cache_stats.hits > 0

    def test_rederive_disabled_keeps_raw_results(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(clip, 10.0, rederive=False))
        for frame in results:
            assert frame.result.backlight_factor == frame.requested_backlight

    def test_custom_scene_detector_respected(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        detector = SceneChangeDetector(threshold=1.0)   # nothing is a cut
        results = list(engine.process_stream(clip, 10.0,
                                             scene_detector=detector))
        assert not any(frame.scene_change for frame in results[1:])

    def test_rederivation_never_exceeds_slew_limit(self, pipeline, clip):
        """Regression: after quantized re-derivation the smoother was reset
        to the raw quantized factor, which can step farther than max_step
        from the previously applied factor in a single frame."""
        max_step = 0.002    # below the ~1/255 re-derivation grid step
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=max_step)))
        trace = np.array([1.0] + [frame.applied_backlight
                                  for frame in results])
        assert np.abs(np.diff(trace)).max() <= max_step + 1e-9

    def test_frame_state_is_internally_consistent(self, pipeline, clip):
        """Every frame either carries the raw result at the smoothed factor
        (re-derivation skipped/rejected) or a re-derived result whose own
        backlight factor IS the programmed one — never a transform derived
        for a factor other than the one reported as applied."""
        engine = Engine(HEBSAlgorithm(pipeline))
        for max_step in (0.002, 0.05):
            results = list(engine.process_stream(
                clip, 10.0, smoother=BacklightSmoother(max_step=max_step)))
            for frame in results:
                assert (frame.result.backlight_factor
                        == frame.requested_backlight
                        or frame.result.backlight_factor
                        == frame.applied_backlight)

    def test_stream_works_for_baselines_without_at_backlight(self, clip):
        engine = Engine()
        results = list(engine.process_stream(clip[:4], 10.0,
                                             algorithm="dls-contrast"))
        assert len(results) == 4
        for frame in results:
            assert 0.0 < frame.applied_backlight <= 1.0
