"""Tests for the OLED darkening adapter behind the unified API."""

import math

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import (
    OLEDDarkenAlgorithm,
    algorithm_display_classes,
    available_algorithms,
    create,
)
from repro.api.types import CompensationResult, CompensationSolution
from repro.core.darken import DarkenResult, DarkenSolution

OLED_ALGORITHMS = ("oled-darken", "oled-darken-clipped")


class TestRegistration:
    def test_registered(self):
        assert set(OLED_ALGORITHMS) <= set(available_algorithms())

    def test_display_classes_cover_every_name(self):
        classes = algorithm_display_classes()
        assert set(classes) == set(available_algorithms())
        for name in OLED_ALGORITHMS:
            assert classes[name] == "emissive"
        assert classes["hebs"] == "backlit"
        assert classes["cbcs"] == "backlit"

    def test_display_class_attribute(self):
        assert create("oled-darken").display_class == "emissive"
        assert create("hebs").display_class == "backlit"

    def test_create_names(self):
        assert create("oled-darken").name == "oled-darken"
        assert create("oled-darken-clipped").name == "oled-darken-clipped"

    def test_clipped_variant_uses_clipped_equalizer(self):
        algorithm = create("oled-darken-clipped")
        assert algorithm.darkener.equalization == "clipped"


class TestContract:
    @pytest.mark.parametrize("name", OLED_ALGORITHMS)
    def test_process_roundtrip(self, name, pout):
        result = create(name).compensate(pout, 10.0)
        assert isinstance(result, CompensationResult)
        assert result.algorithm == name
        assert result.backlight_factor == 1.0
        assert result.power.ccfl == 0.0
        assert result.distortion <= 10.0
        assert result.power_saving > 0.0
        assert isinstance(result.details, DarkenResult)

    def test_solve_apply_split(self, baboon):
        algorithm = create("oled-darken")
        solution = algorithm.solve(baboon, 10.0)
        assert isinstance(solution, CompensationSolution)
        assert solution.backlight_factor == 1.0
        assert isinstance(solution.details, DarkenSolution)
        replayed = algorithm.apply_solution(solution, baboon)
        direct = algorithm.compensate(baboon, 10.0)
        assert np.array_equal(replayed.output.pixels, direct.output.pixels)

    def test_apply_rejects_foreign_solution(self, baboon):
        algorithm = create("oled-darken")
        hebs_solution = create("hebs").solve(baboon, 10.0)
        with pytest.raises(TypeError):
            algorithm.apply_solution(hebs_solution, baboon)

    def test_unbounded_budget_reports_none(self, baboon):
        result = create("oled-darken").compensate(baboon, math.nan)
        assert result.max_distortion is None

    def test_at_backlight_reports_imposed_factor(self, baboon):
        algorithm = create("oled-darken")
        result = algorithm.at_backlight(baboon, 0.5)
        assert result.backlight_factor == 0.5
        # deeper imposed darkening must not cost more power
        gentler = algorithm.at_backlight(baboon, 0.9)
        assert result.power.total <= gentler.power.total

    def test_custom_darkener_passthrough(self, baboon):
        algorithm = OLEDDarkenAlgorithm(min_range=64, safety_margin=1.0)
        assert algorithm.darkener.min_range == 64
        assert algorithm.darkener.safety_margin == 1.0


class TestEngineIntegration:
    def test_engine_process(self, baboon):
        engine = Engine("oled-darken")
        result = engine.process(baboon, 10.0)
        assert result.algorithm == "oled-darken"
        assert result.power.ccfl == 0.0
        assert not result.from_cache

    def test_cache_hit_is_bit_identical(self, baboon):
        engine = Engine("oled-darken")
        first = engine.process(baboon, 10.0)
        second = engine.process(baboon, 10.0)
        assert second.from_cache
        assert np.array_equal(first.output.pixels, second.output.pixels)
        assert first == second

    def test_no_cross_class_cache_leakage(self, baboon):
        """Same image + budget under both display classes: two misses."""
        engine = Engine()
        engine.process(baboon, 10.0, algorithm="hebs")
        engine.process(baboon, 10.0, algorithm="oled-darken")
        stats = engine.cache_stats
        assert stats.misses == 2
        assert stats.hits == 0
        # and each repeat now hits its own entry
        engine.process(baboon, 10.0, algorithm="hebs")
        engine.process(baboon, 10.0, algorithm="oled-darken")
        assert engine.cache_stats.hits == 2

    def test_batch(self, small_suite):
        engine = Engine("oled-darken")
        results = engine.process_batch(small_suite.values(), 10.0)
        assert len(results) == len(small_suite)
        assert all(r.power.ccfl == 0.0 for r in results)

    def test_session_stream(self, baboon):
        engine = Engine("oled-darken")
        with engine.open_session(10.0) as session:
            for _ in range(3):
                frame = session.submit(baboon)
                assert frame.result.power.ccfl == 0.0
