"""Unit tests for the dynamic distortion-budget policy."""

import pytest

from repro.api.budget import BudgetPolicy, DEFAULT_POLICY, OperatingConditions


class TestOperatingConditions:
    def test_defaults(self):
        conditions = OperatingConditions()
        assert conditions.ambient_lux == 250.0
        assert conditions.battery_level == 1.0
        assert not conditions.charging

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingConditions(ambient_lux=-1.0)
        with pytest.raises(ValueError):
            OperatingConditions(battery_level=1.5)

    def test_wire_round_trip(self):
        conditions = OperatingConditions(ambient_lux=1234.5,
                                         battery_level=0.25, charging=True)
        assert OperatingConditions.from_wire(
            conditions.to_wire()) == conditions

    def test_from_wire_defaults_missing_fields(self):
        assert OperatingConditions.from_wire({}) == OperatingConditions()


class TestBudgetPolicy:
    def test_reference_conditions_give_base_ballpark(self):
        policy = BudgetPolicy()
        at_reference = policy.budget_for(OperatingConditions(
            ambient_lux=policy.ambient_reference_lux))
        assert at_reference == pytest.approx(policy.base_budget)

    def test_monotone_in_ambient_light(self):
        policy = BudgetPolicy()
        budgets = [policy.budget_for(OperatingConditions(ambient_lux=lux))
                   for lux in (10.0, 250.0, 2500.0, 25000.0)]
        assert budgets == sorted(budgets)
        assert budgets[-1] > budgets[0]

    def test_dark_room_never_below_reference(self):
        """The ambient term only relaxes the budget, never tightens it."""
        policy = BudgetPolicy()
        assert policy.ambient_term(1.0) == 0.0
        assert policy.ambient_term(0.0) == 0.0

    def test_battery_ramp(self):
        policy = BudgetPolicy()
        full = policy.budget_for(OperatingConditions(battery_level=1.0))
        low = policy.budget_for(OperatingConditions(battery_level=0.10))
        critical = policy.budget_for(OperatingConditions(battery_level=0.02))
        assert full < low <= critical

    def test_battery_term_zero_above_threshold(self):
        policy = BudgetPolicy()
        assert policy.battery_term(policy.low_battery_threshold, False) == 0.0
        assert policy.battery_term(0.9, False) == 0.0

    def test_charging_kills_battery_term(self):
        policy = BudgetPolicy()
        assert policy.battery_term(0.05, charging=True) == 0.0
        draining = policy.budget_for(OperatingConditions(battery_level=0.05))
        plugged = policy.budget_for(OperatingConditions(battery_level=0.05,
                                                        charging=True))
        assert plugged < draining

    def test_clamped_to_bounds(self):
        policy = BudgetPolicy()
        extreme = OperatingConditions(ambient_lux=1e6, battery_level=0.01)
        assert policy.budget_for(extreme) == policy.max_budget
        tiny = BudgetPolicy(base_budget=1.0, min_budget=1.0, max_budget=2.0)
        assert tiny.budget_for(extreme) == 2.0

    def test_quantization_pools_sensor_wiggle(self):
        """Nearby lux readings must map to the same cacheable budget."""
        policy = BudgetPolicy()
        a = policy.budget_for(OperatingConditions(ambient_lux=250.0))
        b = policy.budget_for(OperatingConditions(ambient_lux=251.0))
        assert a == b
        assert a / policy.quantize_step == pytest.approx(
            round(a / policy.quantize_step))

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy(min_budget=10.0, base_budget=5.0)
        with pytest.raises(ValueError):
            BudgetPolicy(base_budget=30.0, max_budget=25.0)
        with pytest.raises(ValueError):
            BudgetPolicy(quantize_step=-0.25)
        with pytest.raises(ValueError):
            BudgetPolicy(ambient_gain=-1.0)

    def test_zero_step_disables_quantization(self):
        policy = BudgetPolicy(quantize_step=0.0)
        budget = policy.budget_for(OperatingConditions(ambient_lux=300.0))
        assert budget == pytest.approx(
            policy.base_budget + policy.ambient_term(300.0))

    def test_wire_round_trip(self):
        policy = BudgetPolicy(base_budget=4.0, ambient_gain=2.0,
                              quantize_step=0.5)
        assert BudgetPolicy.from_wire(policy.to_wire()) == policy

    def test_default_policy_is_usable(self):
        budget = DEFAULT_POLICY.budget_for(OperatingConditions())
        assert DEFAULT_POLICY.min_budget <= budget <= DEFAULT_POLICY.max_budget
