"""Tests for the push-based StreamSession API (Engine.open_session)."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.api.session import SessionClosedError, StreamSession
from repro.core.temporal import (
    BacklightSmoother,
    RollingHistogram,
    SceneChangeDetector,
)
from repro.imaging.image import Image


@pytest.fixture(scope="module")
def clip():
    """A deterministic 12-frame fade between two flat luminance plateaus."""
    frames = []
    for index in range(12):
        level = 40 if index < 6 else 200
        noise = np.full((32, 32), level, dtype=np.int64)
        noise[index % 32, :] = min(level + 5, 255)
        frames.append(Image(noise, name=f"frame{index:02d}"))
    return frames


def _legacy_process_stream(engine, frames, max_distortion, *,
                           smoother=None, scene_detector=None,
                           rederive=True):
    """The pre-refactor ``Engine.process_stream`` loop, verbatim: the
    golden reference the session wrapper must match bit for bit."""
    from repro.api.types import StreamFrameResult

    algo = engine.algorithm(None)
    smoother = smoother or BacklightSmoother()
    scene_detector = scene_detector or SceneChangeDetector()
    for frame in frames:
        grayscale = frame.to_grayscale()
        scene_change = scene_detector.observe(grayscale)
        previous = smoother.current
        raw = engine.process(grayscale, max_distortion, algorithm=algo)
        applied = smoother.update(raw.backlight_factor)
        result = raw
        applied_factor = applied
        if rederive and abs(applied - raw.backlight_factor) > 1e-9:
            try:
                candidate = algo.at_backlight(
                    grayscale, applied, max_distortion=max_distortion)
            except NotImplementedError:
                pass
            else:
                quantized = candidate.backlight_factor
                if smoother.reset_within_limit(quantized,
                                               reference=previous):
                    result = candidate
                    applied_factor = quantized
        yield StreamFrameResult(
            result=result,
            requested_backlight=raw.backlight_factor,
            applied_backlight=applied_factor,
            scene_change=scene_change,
        )


class TestGoldenRegression:
    def test_wrapper_is_bit_identical_to_legacy_loop(self, pipeline, clip):
        """`process_stream` via the session wrapper must yield a bitwise
        identical StreamFrameResult sequence to the pre-refactor inline
        implementation on a fixed synthetic clip."""
        legacy_engine = Engine(HEBSAlgorithm(pipeline))
        expected = list(_legacy_process_stream(legacy_engine, clip, 10.0))

        engine = Engine(HEBSAlgorithm(pipeline))
        actual = list(engine.process_stream(clip, 10.0))

        assert len(actual) == len(expected)
        for want, got in zip(expected, actual):
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)
            assert got.result.backlight_factor == want.result.backlight_factor
            assert got.result.distortion == want.result.distortion
            assert got.requested_backlight == want.requested_backlight
            assert got.applied_backlight == want.applied_backlight
            assert got.scene_change == want.scene_change
            assert not got.reused

    def test_wrapper_matches_legacy_with_tight_smoother(self, pipeline, clip):
        legacy_engine = Engine(HEBSAlgorithm(pipeline))
        expected = list(_legacy_process_stream(
            legacy_engine, clip, 10.0,
            smoother=BacklightSmoother(max_step=0.002)))
        engine = Engine(HEBSAlgorithm(pipeline))
        actual = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=0.002)))
        for want, got in zip(expected, actual):
            assert got.applied_backlight == want.applied_backlight
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)


class TestStreamSession:
    def test_submit_equals_process_stream(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        streamed = list(engine.process_stream(clip, 10.0))
        session_engine = Engine(HEBSAlgorithm(pipeline))
        with session_engine.open_session(10.0) as session:
            pushed = [session.submit(frame) for frame in clip]
        for want, got in zip(streamed, pushed):
            assert got.applied_backlight == want.applied_backlight
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)

    def test_split_phases_equal_submit(self, pipeline, clip):
        """begin -> compute -> complete is exactly submit (the contract the
        serving layer's batch interleave relies on)."""
        whole = Engine(HEBSAlgorithm(pipeline))
        with whole.open_session(10.0) as session:
            expected = [session.submit(frame) for frame in clip[:6]]
        split = Engine(HEBSAlgorithm(pipeline))
        with split.open_session(10.0) as session:
            actual = []
            for frame in clip[:6]:
                plan = session.begin(frame)
                assert plan.needs_solve and plan.batchable
                actual.append(session.complete(plan, session.compute(plan)))
        for want, got in zip(expected, actual):
            assert got.applied_backlight == want.applied_backlight
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)

    def test_batchable_raw_may_come_from_process_batch(self, pipeline, clip):
        """A batchable frame's raw result can be produced by the shared
        process_batch path without changing the outcome."""
        reference = Engine(HEBSAlgorithm(pipeline))
        with reference.open_session(10.0) as session:
            expected = [session.submit(frame) for frame in clip[:4]]
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(10.0) as session:
            actual = []
            for frame in clip[:4]:
                plan = session.begin(frame)
                raw = engine.process_batch([plan.grayscale], 10.0,
                                           algorithm=session.algorithm)[0]
                actual.append(session.complete(plan, raw))
        for want, got in zip(expected, actual):
            assert got.applied_backlight == want.applied_backlight
            assert np.array_equal(want.result.output.pixels,
                                  got.result.output.pixels)

    def test_counters(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(10.0) as session:
            for frame in clip:
                session.submit(frame)
            stats = session.stats()
        assert stats.frames == len(clip)
        assert stats.solved == len(clip)
        assert stats.reused == 0
        assert stats.scene_changes >= 2     # first frame + the plateau cut
        assert session.frames == len(clip)

    def test_closed_session_rejects_frames(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        session = engine.open_session(10.0)
        session.submit(clip[0])
        session.close()
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.submit(clip[1])
        session.close()     # idempotent

    def test_sessions_share_the_engine_cache(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(10.0) as first:
            for frame in clip[:4]:
                first.submit(frame)
        hits_before = engine.cache_stats.hits
        with engine.open_session(10.0) as second:
            for frame in clip[:4]:
                second.submit(frame)
        assert engine.cache_stats.hits > hits_before

    def test_invalid_budget_rejected(self, pipeline):
        engine = Engine(HEBSAlgorithm(pipeline))
        with pytest.raises(ValueError):
            engine.open_session(-1.0)

    def test_session_exposes_configuration(self, pipeline):
        engine = Engine(HEBSAlgorithm(pipeline))
        session = engine.open_session(12.5)
        assert session.max_distortion == 12.5
        assert session.algorithm.name == "hebs"
        assert isinstance(session, StreamSession)


class TestSceneGatedFastPath:
    def test_steady_frames_skip_the_solve(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        frames = [clip[0]] * 6 + [clip[6]] * 6    # two steady scenes
        with engine.open_session(10.0, scene_gated_solve=True) as session:
            results = [session.submit(frame) for frame in frames]
        stats = session.stats()
        assert stats.frames == 12
        assert stats.reused > 0
        assert stats.solved < 12
        assert stats.solved + stats.reused == 12
        # reused frames are flagged, solved ones are not
        assert any(result.reused for result in results)
        assert not results[0].reused              # first frame always solves

    def test_cut_forces_a_fresh_solve(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(
                10.0, scene_gated_solve=True,
                scene_detector=SceneChangeDetector(threshold=0.25)) as session:
            for frame in [clip[0]] * 4:
                session.submit(frame)
            outcome = session.submit(clip[6])     # the 40 -> 200 plateau jump
        assert outcome.scene_change
        assert not outcome.reused

    def test_fast_path_still_honors_flicker_bound(self, pipeline, clip):
        max_step = 0.05
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(
                10.0, scene_gated_solve=True,
                smoother=BacklightSmoother(max_step=max_step)) as session:
            results = [session.submit(frame) for frame in clip]
        trace = np.array([1.0] + [r.applied_backlight for r in results])
        assert np.abs(np.diff(trace)).max() <= max_step + 1e-9

    def test_custom_rolling_histogram_respected(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        rolling = RollingHistogram(alpha=1.0)     # no inertia at all
        with engine.open_session(10.0, scene_gated_solve=True,
                                 rolling=rolling) as session:
            session.submit(clip[0])
        assert not rolling.is_empty


class TestSnapOnSceneChange:
    def test_cut_crawls_without_snap(self, pipeline, clip):
        """Failing-before behaviour being fixed: with the default smoother a
        hard cut converges at max_step per frame, taking many frames."""
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=0.05)))
        cut = results[6]                          # the 40 -> 200 plateau jump
        assert cut.scene_change
        # the request jumped, the applied factor crawled: still far apart
        assert abs(cut.applied_backlight
                   - cut.requested_backlight) > 0.05

    def test_snap_jumps_to_the_new_target_at_the_cut(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=0.05),
            snap_on_scene_change=True))
        cut = results[6]
        assert cut.scene_change
        assert cut.applied_backlight == pytest.approx(
            cut.requested_backlight, abs=1e-9)
        # and the transform agrees with the programmed factor
        assert cut.result.backlight_factor == cut.applied_backlight

    def test_snap_keeps_the_flicker_bound_between_cuts(self, pipeline, clip):
        """Snapping relaxes the bound only *across* a cut; every other
        frame-to-frame step must still honor the smoother's max_step."""
        max_step = 0.05
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip, 10.0, smoother=BacklightSmoother(max_step=max_step),
            snap_on_scene_change=True))
        previous = None
        for outcome in results:
            if previous is not None and not outcome.scene_change:
                assert (abs(outcome.applied_backlight - previous)
                        <= max_step + 1e-9)
            previous = outcome.applied_backlight

    def test_snap_works_on_sessions_too(self, pipeline, clip):
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(10.0, snap_on_scene_change=True) as session:
            results = [session.submit(frame) for frame in clip]
        cut = results[6]
        assert cut.applied_backlight == pytest.approx(
            cut.requested_backlight, abs=1e-9)


class TestSatelliteCoverage:
    def test_non_default_initial_flows_through_process_stream(self, pipeline,
                                                              clip):
        """The first frame slews from the smoother's `initial`, not 1.0."""
        max_step = 0.05
        engine = Engine(HEBSAlgorithm(pipeline))
        results = list(engine.process_stream(
            clip[:3], 10.0,
            smoother=BacklightSmoother(initial=0.6, max_step=max_step)))
        first = results[0].applied_backlight
        assert abs(first - 0.6) <= max_step + 1e-9
        assert abs(first - 1.0) > max_step      # clearly not anchored at 1.0

    def test_non_default_initial_flows_through_sessions(self, pipeline, clip):
        max_step = 0.05
        engine = Engine(HEBSAlgorithm(pipeline))
        with engine.open_session(
                10.0, smoother=BacklightSmoother(initial=0.6,
                                                 max_step=max_step)) as session:
            first = session.submit(clip[0]).applied_backlight
        assert abs(first - 0.6) <= max_step + 1e-9

    def test_process_stream_on_empty_iterable(self, pipeline):
        engine = Engine(HEBSAlgorithm(pipeline))
        assert list(engine.process_stream(iter([]), 10.0)) == []
        assert engine.processed == 0
