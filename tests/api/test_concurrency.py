"""Thread-safety hammer tests: one engine, many threads, serial-equal results.

The serving layer (:mod:`repro.serve`) rests on the engine being safely
shareable.  These tests hammer a single :class:`~repro.api.engine.Engine`
(and a single :class:`~repro.api.cache.SolutionCache`) from many threads
and assert the three contracts the docs promise: no lost updates in the
counters, internally consistent statistics, and bitwise-identical results
versus a serial run.
"""

import threading

import numpy as np
import pytest

from repro.api.cache import SolutionCache
from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm

BUDGETS = (5.0, 10.0, 20.0)
THREADS = 8
ROUNDS = 3


class TestEngineHammer:
    @pytest.fixture(scope="class")
    def serial_reference(self, pipeline, small_suite):
        """Expected output pixels/operating point per (image, budget)."""
        engine = Engine(HEBSAlgorithm(pipeline))
        return {
            (name, budget): engine.process(image, budget)
            for name, image in small_suite.items()
            for budget in BUDGETS
        }

    def test_hammer_shared_engine(self, pipeline, small_suite,
                                  serial_reference):
        engine = Engine(HEBSAlgorithm(pipeline))
        workload = [(name, image, budget)
                    for name, image in small_suite.items()
                    for budget in BUDGETS]
        barrier = threading.Barrier(THREADS)
        failures: list[str] = []
        lock = threading.Lock()

        def worker(offset: int) -> None:
            barrier.wait()
            # each thread walks the whole workload from its own offset so
            # every (image, budget) pair races across threads
            for round_index in range(ROUNDS):
                for step in range(len(workload)):
                    name, image, budget = workload[
                        (offset + step) % len(workload)]
                    result = engine.process(image, budget)
                    expected = serial_reference[(name, budget)]
                    if not np.array_equal(expected.output.pixels,
                                          result.output.pixels) \
                            or result.backlight_factor \
                            != expected.backlight_factor \
                            or result.distortion != expected.distortion:
                        with lock:
                            failures.append(f"{name}@{budget}")

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, f"results diverged from serial: {failures[:5]}"
        total = THREADS * ROUNDS * len(workload)
        # no lost updates in the processed counter
        assert engine.processed == total
        stats = engine.cache_stats
        # consistent stats: every process probed the cache exactly once,
        # except losers of a cold-solve race who probed twice (miss + the
        # double-checked hit) — so lookups >= total and the books balance
        assert stats.lookups == stats.hits + stats.misses
        assert stats.lookups >= total
        assert stats.misses >= len(workload)        # every key missed once
        assert stats.size == len(workload)          # one entry per key
        assert stats.evictions == 0
        assert stats.hits == stats.lookups - stats.misses

    def test_hammer_process_batch(self, pipeline, small_suite):
        """Concurrent batches over shared content: counters stay exact."""
        engine = Engine(HEBSAlgorithm(pipeline))
        images = list(small_suite.values()) * 2     # 8 images, 4 distinct
        outputs: list[list] = [None] * THREADS

        def worker(index: int) -> None:
            outputs[index] = engine.process_batch(images, 10.0)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        reference = outputs[0]
        for batch in outputs[1:]:
            for expected, actual in zip(reference, batch):
                assert np.array_equal(expected.output.pixels,
                                      actual.output.pixels)
        assert engine.processed == THREADS * len(images)
        stats = engine.cache_stats
        # every batch replays half its images (duplicates within the batch)
        assert stats.replays == THREADS * len(small_suite)
        assert stats.lookups == stats.hits + stats.misses

    def test_cold_solve_race_coalesces(self, pipeline, lena):
        """Threads racing on one cold histogram must share a single solve."""
        solves = []
        solve_lock = threading.Lock()
        algo = HEBSAlgorithm(pipeline)
        original_solve = algo.solve

        def counting_solve(image, max_distortion):
            with solve_lock:
                solves.append(max_distortion)
            return original_solve(image, max_distortion)

        algo.solve = counting_solve
        engine = Engine(algo)
        barrier = threading.Barrier(THREADS)

        def worker() -> None:
            barrier.wait()
            engine.process(lena, 10.0)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(solves) == 1
        stats = engine.cache_stats
        # the race losers re-probed under the solve lock: all books balance.
        # every thread either hit outright or missed and then found the
        # winner's entry, so exactly one thread (the winner) recorded no hit
        assert stats.lookups == stats.hits + stats.misses
        assert 1 <= stats.misses <= THREADS
        assert stats.hits == THREADS - 1


class TestSolutionCacheHammer:
    def test_counters_and_size_stay_consistent(self):
        cache = SolutionCache(max_size=64)
        per_thread = 400

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(per_thread):
                key = int(rng.integers(0, 128))
                if cache.get(key) is None:
                    cache.put(key, key * 2)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats
        assert stats.lookups == THREADS * per_thread
        assert stats.hits + stats.misses == stats.lookups
        assert len(cache) <= 64
        assert stats.size == len(cache)

    def test_concurrent_clear_never_corrupts(self):
        cache = SolutionCache(max_size=32)
        stop = threading.Event()

        def churner(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                key = int(rng.integers(0, 64))
                cache.put(key, key)
                cache.get(int(rng.integers(0, 64)))

        def clearer() -> None:
            for _ in range(50):
                cache.clear()

        threads = [threading.Thread(target=churner, args=(seed,))
                   for seed in range(4)]
        for thread in threads:
            thread.start()
        clearer()
        stop.set()
        for thread in threads:
            thread.join()
        stats = cache.stats
        assert 0 <= stats.size <= 32
        assert stats.hits >= 0 and stats.misses >= 0


class TestAdoptionRace:
    def test_in_flight_solve_cannot_repopulate_replaced_instance(self, lena):
        """Regression: cache keys led with the registry *name*, so a solve
        still in flight on a replaced instance could re-insert its solution
        after the adoption's invalidation sweep — and the newly adopted
        instance would replay it."""
        from repro.bench.suite import default_pipeline
        from repro.core.pipeline import HEBSConfig

        first = HEBSAlgorithm(default_pipeline())
        second = HEBSAlgorithm(default_pipeline(config=HEBSConfig(g_min=32)))
        assert first.name == second.name == "hebs"
        engine = Engine(first)

        solving = threading.Event()
        release = threading.Event()
        original_solve = first.solve

        def blocking_solve(image, max_distortion):
            solving.set()
            assert release.wait(30)
            return original_solve(image, max_distortion)

        first.solve = blocking_solve
        stale: dict[str, object] = {}
        thread = threading.Thread(
            target=lambda: stale.update(
                result=engine.process(lena, 10.0, algorithm=first)))
        thread.start()
        assert solving.wait(30)
        # the adoption lands while first's solve is still in flight: its
        # invalidation sweep finds nothing to drop yet
        engine.algorithm(second)
        release.set()
        thread.join(30)
        assert not thread.is_alive()

        # first's late put must be invisible to the adopted instance
        result = engine.process(lena, 10.0, algorithm=second)
        assert not result.from_cache
        expected = second.compensate(lena, 10.0)
        assert result.backlight_factor == expected.backlight_factor
        assert np.array_equal(result.output.pixels, expected.output.pixels)
