"""Tests for the histogram-only solve surface (:meth:`Engine.solve` and
:meth:`Histogram.to_image`) — the API layer under the ``solve`` RPC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.core.histogram import Histogram
from repro.imaging.image import Image


class TestHistogramToImage:
    def test_round_trips_the_histogram_bitwise(self, lena):
        histogram = Histogram.of_image(lena)
        assert Histogram.of_image(histogram.to_image()) == histogram

    def test_shape_is_squarest_exact_factorization(self, lena):
        image = Histogram.of_image(lena).to_image()
        assert image.n_pixels == lena.n_pixels
        assert image.shape == (128, 128)      # 16384 pixels -> square

    def test_prime_pixel_count_degrades_to_a_row(self):
        histogram = Histogram(np.array([7, 0, 0, 0]))     # 7 pixels, prime
        image = histogram.to_image()
        assert image.shape == (1, 7)
        assert Histogram.of_image(image) == histogram

    def test_bit_depth_covers_the_level_count(self):
        image = Histogram(np.array([1, 0, 1, 2])).to_image()
        assert image.bit_depth == 2
        assert Histogram.of_image(image).levels == 4


class TestEngineSolve:
    def test_image_and_its_histogram_solve_identically(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        from_image = engine.solve(lena, 10.0)
        from_histogram = Engine(HEBSAlgorithm(pipeline)).solve(
            Histogram.of_image(lena), 10.0)
        assert from_histogram.backlight_factor == from_image.backlight_factor
        assert from_histogram.transform == from_image.transform

    def test_solution_matches_process_and_applies_bit_identically(
            self, pipeline, pout):
        engine = Engine(HEBSAlgorithm(pipeline))
        solution = engine.solve(Histogram.of_image(pout), 10.0)
        result = Engine(HEBSAlgorithm(pipeline)).process(pout, 10.0)
        assert solution.backlight_factor == result.backlight_factor
        applied = solution.transform.apply(pout.to_grayscale())
        assert np.array_equal(applied.pixels, result.output.pixels)

    def test_solve_fills_the_shared_cache_for_process(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.solve(Histogram.of_image(lena), 10.0)
        assert engine.cache_stats.misses == 1
        result = engine.process(lena, 10.0)
        assert result.from_cache
        assert engine.cache_stats.hits == 1

    def test_solve_accepts_per_call_algorithm(self, lena):
        solution = Engine().solve(lena, 10.0, algorithm="cbcs")
        assert solution.algorithm == "cbcs"
        assert solution.driver_program is None

    def test_histogram_only_solve_works_for_the_baselines(self, lena):
        engine = Engine()
        histogram = Histogram.of_image(lena)
        for name in ("dls-brightness", "dls-contrast", "cbcs"):
            solution = engine.solve(histogram, 10.0, algorithm=name)
            assert solution.algorithm == name
            assert 0.0 < solution.backlight_factor <= 1.0

    def test_negative_budget_raises(self, lena):
        with pytest.raises(ValueError, match="non-negative"):
            Engine().solve(lena, -1.0)
