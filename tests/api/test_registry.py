"""Tests for the algorithm registry and the unified compensation contract."""

import numpy as np
import pytest

from repro.api.registry import (
    BaselineAlgorithm,
    CompensationAlgorithm,
    HEBSAlgorithm,
    algorithm_descriptions,
    available_algorithms,
    create,
    register,
)
from repro.api.types import CompensationResult, CompensationSolution
from repro.baselines.cbcs import CBCS
from repro.core.pipeline import HEBSResult

ALL_ALGORITHMS = ("hebs", "hebs-adaptive", "hebs-clipped", "hebs-bbhe",
                  "dls-brightness", "dls-contrast", "cbcs")


class TestRegistry:
    def test_all_builtin_algorithms_registered(self):
        assert set(ALL_ALGORITHMS) <= set(available_algorithms())

    def test_descriptions_cover_every_name(self):
        descriptions = algorithm_descriptions()
        assert set(descriptions) == set(available_algorithms())
        assert all(descriptions[name] for name in ALL_ALGORITHMS)

    def test_create_is_case_insensitive(self):
        assert create("CBCS").name == "cbcs"

    def test_unknown_name_raises_with_inventory(self):
        with pytest.raises(KeyError, match="cbcs"):
            create("not-an-algorithm")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("hebs", lambda: None)

    def test_overwrite_registration_roundtrip(self):
        factory, description = (lambda **o: BaselineAlgorithm(CBCS(**o)),
                                "temp")
        register("test-temp", factory, description)
        try:
            assert create("test-temp").name == "cbcs"
        finally:
            # restore: overwriting with itself keeps the registry clean
            register("test-temp", factory, description, overwrite=True)

    def test_create_returns_fresh_instances(self):
        assert create("hebs") is not create("hebs")


class TestContract:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_compensate_roundtrip(self, name, pout):
        algorithm = create(name)
        assert isinstance(algorithm, CompensationAlgorithm)
        result = algorithm.compensate(pout, 10.0)
        assert isinstance(result, CompensationResult)
        assert result.algorithm == name
        assert 0.0 < result.backlight_factor <= 1.0
        assert result.distortion >= 0.0
        assert result.output.shape == pout.shape
        assert result.power.total <= result.reference_power.total * 1.001
        assert result.max_distortion == 10.0

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_solve_apply_equals_compensate(self, name, pout):
        algorithm = create(name)
        solution = algorithm.solve(pout, 10.0)
        assert isinstance(solution, CompensationSolution)
        replayed = algorithm.apply_solution(solution, pout,
                                            max_distortion=10.0)
        direct = algorithm.compensate(pout, 10.0)
        assert np.array_equal(replayed.output.pixels, direct.output.pixels)
        assert replayed.backlight_factor == direct.backlight_factor
        assert replayed.distortion == direct.distortion

    def test_hebs_result_matches_legacy_process(self, pipeline, lena):
        """The adapter is a repackaging, not a different algorithm."""
        legacy = pipeline.process(lena, 10.0)
        unified = HEBSAlgorithm(pipeline).compensate(lena, 10.0)
        assert np.array_equal(unified.output.pixels,
                              legacy.transformed.pixels)
        assert unified.backlight_factor == legacy.backlight_factor
        assert unified.distortion == legacy.distortion
        assert isinstance(unified.details, HEBSResult)

    def test_baseline_result_matches_legacy_optimize(self, lena):
        method = CBCS()
        legacy = method.optimize(lena, 10.0)
        unified = BaselineAlgorithm(CBCS()).compensate(lena, 10.0)
        assert np.array_equal(unified.output.pixels, legacy.displayed.pixels)
        assert unified.backlight_factor == legacy.backlight_factor

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_at_backlight(self, name, pout):
        result = create(name).at_backlight(pout, 0.6)
        assert 0.0 < result.backlight_factor <= 1.0
        assert result.distortion >= 0.0

    def test_at_backlight_honours_g_min(self, characteristic_curve, pout):
        """The beta -> range inversion must account for config.g_min."""
        from repro.core.pipeline import HEBS, HEBSConfig

        pipeline = HEBS(characteristic_curve, HEBSConfig(g_min=16))
        result = HEBSAlgorithm(pipeline).at_backlight(pout, 0.5)
        # round-tripping through the range grid stays within one level
        assert abs(result.backlight_factor - 0.5) <= 1.5 / 255

    def test_wrong_solution_type_rejected(self, pout):
        hebs = create("hebs")
        foreign = create("cbcs").solve(pout, 10.0)
        with pytest.raises(TypeError, match="HEBS"):
            hebs.apply_solution(foreign, pout)
