"""Tests for the histogram-keyed LRU solution cache."""

import numpy as np
import pytest

from repro.api.cache import SolutionCache, histogram_signature
from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.core.histogram import Histogram
from repro.imaging.image import Image


class TestHistogramSignature:
    def test_same_image_same_signature(self, lena):
        histogram = Histogram.of_image(lena)
        assert histogram_signature(histogram) == histogram_signature(histogram)

    def test_different_content_different_signature(self, lena, baboon):
        assert (histogram_signature(Histogram.of_image(lena))
                != histogram_signature(Histogram.of_image(baboon)))

    def test_resolution_invariance(self):
        """The same distribution at different pixel counts shares a key."""
        probabilities = np.zeros(256)
        probabilities[10:50] = 1.0
        small = Histogram.from_probabilities(probabilities, n_pixels=4096)
        large = Histogram.from_probabilities(probabilities, n_pixels=65536)
        assert histogram_signature(small) == histogram_signature(large)

    def test_coarse_bins_group_near_identical_histograms(self):
        """A shift *within* one coarse bucket keeps the signature stable."""
        a = Histogram.of_image(Image.constant(10, shape=(32, 32)))
        b = Histogram.of_image(Image.constant(11, shape=(32, 32)))
        assert histogram_signature(a, bins=256) != histogram_signature(b, bins=256)
        assert histogram_signature(a, bins=8) == histogram_signature(b, bins=8)

    def test_invalid_bins_rejected(self, lena):
        with pytest.raises(ValueError, match="bins"):
            histogram_signature(Histogram.of_image(lena), bins=0)


class TestSolutionCache:
    def test_hit_miss_counters(self):
        cache = SolutionCache(max_size=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SolutionCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_clear_resets_everything(self):
        cache = SolutionCache(max_size=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size, stats.evictions) \
            == (0, 0, 0, 0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="max_size"):
            SolutionCache(max_size=0)

    def test_peek_does_not_count_probes(self):
        cache = SolutionCache(max_size=4)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 0)

    def test_peek_refreshes_recency_unless_told_not_to(self):
        cache = SolutionCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")                     # "a" becomes MRU
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache
        cache.peek("a", touch=False)        # no recency change
        cache.put("d", 4)
        assert "a" not in cache             # "a" stayed LRU and was evicted

    def test_note_hit_and_note_replays_feed_stats(self):
        cache = SolutionCache(max_size=4)
        cache.note_hit()
        cache.note_replays(3)
        stats = cache.stats
        assert stats.hits == 1
        assert stats.replays == 3
        assert stats.lookups == 1           # replays are not probes
        assert stats.reuse_rate == pytest.approx(1.0)
        with pytest.raises(ValueError, match="non-negative"):
            cache.note_replays(-1)
        with pytest.raises(ValueError, match="non-negative"):
            cache.note_hit(-1)

    def test_clear_resets_replays(self):
        cache = SolutionCache(max_size=4)
        cache.note_replays(5)
        cache.clear()
        assert cache.stats.replays == 0

    def test_hit_rate_and_reuse_rate(self):
        cache = SolutionCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")                      # hit
        cache.get("b")                      # miss
        cache.note_replays(2)
        stats = cache.stats
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.reuse_rate == pytest.approx(3 / 4)


class TestEngineCacheSemantics:
    def test_cache_hit_result_bitwise_identical_to_cold(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        cold = engine.process(lena, 10.0)
        warm = engine.process(lena, 10.0)
        assert not cold.from_cache
        assert warm.from_cache
        assert np.array_equal(cold.output.pixels, warm.output.pixels)
        assert warm.backlight_factor == cold.backlight_factor
        assert warm.distortion == cold.distortion
        assert warm.power == cold.power
        assert warm == cold          # from_cache/details excluded from equality

    def test_different_budgets_do_not_collide(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        tight = engine.process(lena, 5.0)
        loose = engine.process(lena, 30.0)
        assert not loose.from_cache
        assert loose.backlight_factor < tight.backlight_factor

    def test_different_algorithms_do_not_collide(self, lena):
        engine = Engine()
        hebs = engine.process(lena, 10.0, algorithm="hebs")
        cbcs = engine.process(lena, 10.0, algorithm="cbcs")
        assert not cbcs.from_cache
        assert hebs.algorithm != cbcs.algorithm

    def test_cache_disabled_never_hits(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline), cache_size=0)
        engine.process(lena, 10.0)
        again = engine.process(lena, 10.0)
        assert not again.from_cache
        assert engine.cache_stats.lookups == 0

    def test_cache_disabled_batch_never_marks_cached(self, pipeline, lena):
        """With the cache off, batch grouping is off too: every image is an
        independent solve and from_cache stays False throughout."""
        engine = Engine(HEBSAlgorithm(pipeline), cache_size=0)
        results = engine.process_batch([lena, lena, lena], 10.0)
        assert not any(result.from_cache for result in results)
        assert engine.cache_stats.lookups == 0

    def test_clear_cache_forces_resolve(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.process(lena, 10.0)
        engine.clear_cache()
        result = engine.process(lena, 10.0)
        assert not result.from_cache

    def test_prime_solves_into_the_cache(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        assert engine.prime(lena, 10.0) is True      # fresh solve cached
        assert engine.prime(lena, 10.0) is False     # already cached
        assert engine.process(lena, 10.0).from_cache
        assert engine.processed == 1                 # prime applies nothing

    def test_prime_with_cache_disabled_is_a_no_op(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline), cache_size=0)
        assert engine.prime(lena, 10.0) is False
        assert engine.cache_stats.lookups == 0

    def test_prime_rejects_negative_budget(self, pipeline, lena):
        with pytest.raises(ValueError, match="non-negative"):
            Engine(HEBSAlgorithm(pipeline)).prime(lena, -1.0)

    def test_signature_default_matches_engine_default(self, lena):
        """The histogram_signature default (256 bins: the exact 8-bit
        histogram) agrees with the engine's documented signature_bins=256."""
        histogram = Histogram.of_image(lena)
        assert histogram_signature(histogram) \
            == histogram_signature(histogram, bins=Engine().signature_bins)
