"""Tests for the Engine facade: process, process_batch and the invariants."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm, available_algorithms

SWEEP_BUDGETS = (2.0, 5.0, 10.0, 20.0, 30.0)


class TestProcess:
    def test_default_algorithm_is_hebs(self, lena):
        result = Engine().process(lena, 10.0)
        assert result.algorithm == "hebs"

    def test_per_call_algorithm_override(self, lena):
        engine = Engine()
        assert engine.process(lena, 10.0, algorithm="cbcs").algorithm == "cbcs"

    def test_engine_accepts_algorithm_instance(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline, adaptive=True))
        assert engine.process(lena, 10.0).algorithm == "hebs-adaptive"

    def test_negative_budget_rejected(self, lena):
        with pytest.raises(ValueError, match="non-negative"):
            Engine().process(lena, -1.0)

    def test_rgb_input_collapsed_to_grayscale(self, rgb_image):
        result = Engine().process(rgb_image, 10.0)
        assert result.output.is_grayscale

    def test_processed_counter(self, pipeline, lena, pout):
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.process(lena, 10.0)
        engine.process_batch([lena, pout], 10.0)
        assert engine.processed == 3


class TestProcessBatch:
    def test_batch_equals_n_times_process(self, pipeline, small_suite):
        """The batched path must be indistinguishable from the loop."""
        images = list(small_suite.values())
        loop_engine = Engine(HEBSAlgorithm(pipeline))
        singles = [loop_engine.process(image, 10.0) for image in images]

        batch_engine = Engine(HEBSAlgorithm(pipeline))
        batched = batch_engine.process_batch(images, 10.0)

        assert len(batched) == len(singles)
        for single, member in zip(singles, batched):
            assert np.array_equal(single.output.pixels, member.output.pixels)
            assert member.backlight_factor == single.backlight_factor
            assert member.distortion == single.distortion
            assert member == single

    def test_batch_preserves_input_order(self, pipeline, small_suite):
        images = list(small_suite.values())
        results = Engine(HEBSAlgorithm(pipeline)).process_batch(images, 10.0)
        for image, result in zip(images, results):
            assert result.original == image.to_grayscale()

    def test_repeated_histograms_solved_once(self, pipeline, lena, pout):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = engine.process_batch([lena, pout, lena, pout, lena], 10.0)
        # 2 distinct histograms -> 2 misses, everything else replayed (and
        # counted as hits so the stats reflect the avoided solves)
        assert engine.cache_stats.misses == 2
        assert engine.cache_stats.hits == 3
        assert sum(result.from_cache for result in results) == 3

    def test_empty_batch(self, pipeline):
        assert Engine(HEBSAlgorithm(pipeline)).process_batch([], 10.0) == []


class TestInvariantSweep:
    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_invariants_hold_across_budgets(self, name, small_suite):
        """0 < beta <= 1 and distortion >= 0 for every (algorithm, budget,
        image) operating point reachable through the engine."""
        engine = Engine(algorithm=name)
        for budget in SWEEP_BUDGETS:
            for image in small_suite.values():
                result = engine.process(image, budget)
                assert 0.0 < result.backlight_factor <= 1.0, (name, budget)
                assert result.distortion >= 0.0, (name, budget)
                assert result.power.total >= 0.0, (name, budget)
                assert result.max_distortion == budget

    def test_saving_monotone_in_budget_for_hebs(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        savings = [engine.process(lena, budget).power_saving_percent
                   for budget in SWEEP_BUDGETS]
        assert savings == sorted(savings)
