"""Tests for the Engine facade: process, process_batch and the invariants."""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm, available_algorithms

SWEEP_BUDGETS = (2.0, 5.0, 10.0, 20.0, 30.0)


class TestProcess:
    def test_default_algorithm_is_hebs(self, lena):
        result = Engine().process(lena, 10.0)
        assert result.algorithm == "hebs"

    def test_per_call_algorithm_override(self, lena):
        engine = Engine()
        assert engine.process(lena, 10.0, algorithm="cbcs").algorithm == "cbcs"

    def test_engine_accepts_algorithm_instance(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline, adaptive=True))
        assert engine.process(lena, 10.0).algorithm == "hebs-adaptive"

    def test_negative_budget_rejected(self, lena):
        with pytest.raises(ValueError, match="non-negative"):
            Engine().process(lena, -1.0)

    def test_rgb_input_collapsed_to_grayscale(self, rgb_image):
        result = Engine().process(rgb_image, 10.0)
        assert result.output.is_grayscale

    def test_processed_counter(self, pipeline, lena, pout):
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.process(lena, 10.0)
        engine.process_batch([lena, pout], 10.0)
        assert engine.processed == 3


class TestProcessBatch:
    def test_batch_equals_n_times_process(self, pipeline, small_suite):
        """The batched path must be indistinguishable from the loop."""
        images = list(small_suite.values())
        loop_engine = Engine(HEBSAlgorithm(pipeline))
        singles = [loop_engine.process(image, 10.0) for image in images]

        batch_engine = Engine(HEBSAlgorithm(pipeline))
        batched = batch_engine.process_batch(images, 10.0)

        assert len(batched) == len(singles)
        for single, member in zip(singles, batched):
            assert np.array_equal(single.output.pixels, member.output.pixels)
            assert member.backlight_factor == single.backlight_factor
            assert member.distortion == single.distortion
            assert member == single

    def test_batch_preserves_input_order(self, pipeline, small_suite):
        images = list(small_suite.values())
        results = Engine(HEBSAlgorithm(pipeline)).process_batch(images, 10.0)
        for image, result in zip(images, results):
            assert result.original == image.to_grayscale()

    def test_repeated_histograms_solved_once(self, pipeline, lena, pout):
        engine = Engine(HEBSAlgorithm(pipeline))
        results = engine.process_batch([lena, pout, lena, pout, lena], 10.0)
        # 2 distinct histograms -> 2 probes (both misses); the other 3
        # images replay the shared group solve without touching the cache
        stats = engine.cache_stats
        assert stats.misses == 2
        assert stats.hits == 0
        assert stats.replays == 3
        assert stats.lookups == 2
        assert sum(result.replayed for result in results) == 3
        assert not any(result.from_cache for result in results)

    def test_replays_do_not_skew_hit_rate(self, pipeline, lena, pout):
        """Regression: replay members used to issue synthetic cache probes,
        double-counting lookups and inflating hit_rate."""
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.process_batch([lena, lena, lena, lena, pout], 10.0)
        stats = engine.cache_stats
        # a cold batch answered nothing from the cache: honest rate is 0
        assert stats.hit_rate == 0.0
        assert stats.reuse_rate == pytest.approx(3 / 5)
        # a second identical batch hits once per group, replays the rest
        engine.process_batch([lena, lena, lena, lena, pout], 10.0)
        stats = engine.cache_stats
        assert (stats.hits, stats.misses, stats.replays) == (2, 2, 6)

    def test_distinct_budgets_never_alias(self, pipeline, lena):
        """Regression: budgets were rounded to 6 decimals in the cache key,
        collapsing distinct budgets onto one cached solution."""
        engine = Engine(HEBSAlgorithm(pipeline))
        engine.process(lena, 10.0)
        close = engine.process(lena, 10.0 + 1e-9)
        assert not close.from_cache
        assert engine.cache_stats.misses == 2
        # the exact same budget still hits
        assert engine.process(lena, 10.0).from_cache

    def test_reconfigured_instance_invalidates_stale_solutions(self, lena):
        """Regression: the cache keys on the algorithm *name*, so adopting a
        differently configured instance under an existing name used to
        replay the previous configuration's cached solutions."""
        from repro.bench.suite import default_pipeline
        from repro.core.pipeline import HEBSConfig

        first = HEBSAlgorithm(default_pipeline())
        second = HEBSAlgorithm(default_pipeline(config=HEBSConfig(g_min=32)))
        assert first.name == second.name == "hebs"
        engine = Engine(first)
        baseline = engine.process(lena, 10.0)
        reconfigured = engine.process(lena, 10.0, algorithm=second)
        assert not reconfigured.from_cache
        expected = second.compensate(lena, 10.0)
        assert reconfigured.backlight_factor == expected.backlight_factor
        assert np.array_equal(reconfigured.output.pixels,
                              expected.output.pixels)
        assert baseline.backlight_factor != reconfigured.backlight_factor

    def test_cache_disabled_batch_still_groups(self, pipeline, lena, pout):
        """Regression: with cache_size=0 the batch path skipped histogram
        grouping entirely and re-solved every duplicate."""
        solves = []
        algo = HEBSAlgorithm(pipeline)
        original_solve = algo.solve

        def counting_solve(image, max_distortion):
            solves.append(image)
            return original_solve(image, max_distortion)

        algo.solve = counting_solve
        engine = Engine(algo, cache_size=0)
        results = engine.process_batch([lena, pout, lena, lena, pout], 10.0)
        assert len(solves) == 2                  # one solve per histogram
        assert engine.cache_stats.lookups == 0   # nothing probed a cache
        assert not any(result.from_cache for result in results)
        assert sum(result.replayed for result in results) == 3

    def test_cache_disabled_grouping_is_exact(self, pipeline):
        """With caching disabled, grouping keys on the exact histogram, not
        the quantized signature: two images whose histograms differ below
        the signature's fixed-point resolution must be solved separately
        (the signature tolerance is the caching approximation, which a
        cache-disabled engine opted out of)."""
        from repro.api.cache import histogram_signature
        from repro.core.histogram import Histogram
        from repro.imaging.image import Image

        flat = np.full((128, 64), 10, dtype=np.uint8)
        tweaked = flat.copy()
        tweaked[0, 0] = 200                      # 1 of 8192 pixels moved
        a, b = Image(flat, name="a"), Image(tweaked, name="b")
        assert histogram_signature(Histogram.of_image(a)) \
            == histogram_signature(Histogram.of_image(b))

        solves = []
        algo = HEBSAlgorithm(pipeline)
        original_solve = algo.solve

        def counting_solve(image, max_distortion):
            solves.append(image)
            return original_solve(image, max_distortion)

        algo.solve = counting_solve
        engine = Engine(algo, cache_size=0)
        results = engine.process_batch([a, b], 10.0)
        assert len(solves) == 2
        assert not any(result.replayed for result in results)

    def test_empty_batch(self, pipeline):
        assert Engine(HEBSAlgorithm(pipeline)).process_batch([], 10.0) == []


class TestInvariantSweep:
    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_invariants_hold_across_budgets(self, name, small_suite):
        """0 < beta <= 1 and distortion >= 0 for every (algorithm, budget,
        image) operating point reachable through the engine."""
        engine = Engine(algorithm=name)
        for budget in SWEEP_BUDGETS:
            for image in small_suite.values():
                result = engine.process(image, budget)
                assert 0.0 < result.backlight_factor <= 1.0, (name, budget)
                assert result.distortion >= 0.0, (name, budget)
                assert result.power.total >= 0.0, (name, budget)
                assert result.max_distortion == budget

    def test_saving_monotone_in_budget_for_hebs(self, pipeline, lena):
        engine = Engine(HEBSAlgorithm(pipeline))
        savings = [engine.process(lena, budget).power_saving_percent
                   for budget in SWEEP_BUDGETS]
        assert savings == sorted(savings)
