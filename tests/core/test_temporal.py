"""Unit tests for the temporal (video) backlight controller."""

import numpy as np
import pytest

from repro.core.temporal import (
    BacklightSmoother,
    RollingHistogram,
    SceneChangeDetector,
    TemporalBacklightController,
)
from repro.imaging.image import Image


def make_clip(bright_then_dark: bool = True, n_frames: int = 6) -> list[Image]:
    """A deterministic clip with a hard scene cut in the middle."""
    rng = np.random.default_rng(7)
    bright = np.clip(rng.normal(0.7, 0.1, size=(48, 48)), 0, 1)
    dark = np.clip(rng.normal(0.25, 0.08, size=(48, 48)), 0, 1)
    first, second = (bright, dark) if bright_then_dark else (dark, bright)
    frames = []
    for index in range(n_frames):
        scene = first if index < n_frames // 2 else second
        jitter = 0.01 * rng.standard_normal(scene.shape)
        frames.append(Image.from_float(np.clip(scene + jitter, 0, 1),
                                       name=f"frame{index}"))
    return frames


class TestBacklightSmoother:
    def test_validation(self):
        with pytest.raises(ValueError, match="smoothing"):
            BacklightSmoother(smoothing=0.0)
        with pytest.raises(ValueError, match="max_step"):
            BacklightSmoother(max_step=0.0)
        with pytest.raises(ValueError, match="initial"):
            BacklightSmoother(initial=0.0)

    def test_step_limit_enforced(self):
        smoother = BacklightSmoother(smoothing=1.0, max_step=0.1, initial=1.0)
        applied = smoother.update(0.3)
        assert applied == pytest.approx(0.9)

    def test_converges_to_constant_target(self):
        smoother = BacklightSmoother(smoothing=0.5, max_step=0.2, initial=1.0)
        for _ in range(40):
            value = smoother.update(0.4)
        assert value == pytest.approx(0.4, abs=0.02)

    def test_no_overshoot(self):
        smoother = BacklightSmoother(smoothing=1.0, max_step=0.5, initial=1.0)
        assert smoother.update(0.8) == pytest.approx(0.8)

    def test_reset(self):
        smoother = BacklightSmoother(initial=0.9)
        smoother.update(0.3)
        smoother.reset()
        assert smoother.current == 0.9
        smoother.reset(0.5)
        assert smoother.current == 0.5

    def test_target_validation(self):
        with pytest.raises(ValueError, match="target"):
            BacklightSmoother().update(0.0)

    def test_reset_within_limit(self):
        smoother = BacklightSmoother(max_step=0.1, initial=0.8)
        assert smoother.reset_within_limit(0.75)
        assert smoother.current == 0.75
        # beyond the flicker bound: rejected, state unchanged
        assert not smoother.reset_within_limit(0.5)
        assert smoother.current == 0.75
        # an explicit reference anchors the bound instead of the current
        assert not smoother.reset_within_limit(0.75, reference=0.5)
        assert smoother.reset_within_limit(0.55, reference=0.5)
        assert smoother.current == 0.55


class TestRollingHistogram:
    def test_first_frame_initializes(self, lena):
        rolling = RollingHistogram()
        assert rolling.is_empty
        histogram = rolling.update(lena)
        assert histogram.n_pixels == pytest.approx(lena.n_pixels, rel=0.01)

    def test_blends_towards_new_content(self, lena, pout):
        rolling = RollingHistogram(alpha=0.5)
        rolling.update(lena)
        blended = rolling.update(pout)
        distance_to_pout = blended.l1_distance(
            RollingHistogram().update(pout))
        distance_to_lena = blended.l1_distance(
            RollingHistogram().update(lena))
        # after one 50% update the estimate sits between the two images
        assert 0.0 < distance_to_pout
        assert 0.0 < distance_to_lena

    def test_alpha_one_tracks_instantly(self, lena, pout):
        rolling = RollingHistogram(alpha=1.0)
        rolling.update(lena)
        tracked = rolling.update(pout)
        assert tracked.l1_distance(RollingHistogram().update(pout)) == \
            pytest.approx(0.0, abs=1e-9)

    def test_current_before_update_raises(self):
        with pytest.raises(RuntimeError, match="no frame"):
            RollingHistogram().current()

    def test_reset(self, lena):
        rolling = RollingHistogram()
        rolling.update(lena)
        rolling.reset()
        assert rolling.is_empty

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            RollingHistogram(alpha=0.0)
        with pytest.raises(ValueError, match="levels"):
            RollingHistogram(levels=1)


class TestSceneChangeDetector:
    def test_first_frame_is_a_scene_change(self, lena):
        assert SceneChangeDetector().observe(lena) is True

    def test_similar_frame_is_not(self, lena):
        detector = SceneChangeDetector()
        detector.observe(lena)
        assert detector.observe(lena) is False

    def test_hard_cut_detected(self, lena, pout):
        detector = SceneChangeDetector(threshold=0.2)
        detector.observe(lena)
        assert detector.observe(pout) is True

    def test_reset(self, lena):
        detector = SceneChangeDetector()
        detector.observe(lena)
        detector.reset()
        assert detector.observe(lena) is True

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            SceneChangeDetector(threshold=0.0)


class TestTemporalBacklightController:
    def test_flicker_constraint_met(self, pipeline):
        controller = TemporalBacklightController(
            pipeline, max_distortion=15.0,
            smoother=BacklightSmoother(smoothing=0.6, max_step=0.08))
        for frame in make_clip():
            controller.submit(frame)
        # 1/255 slack for the rounding of the factor to a dynamic range
        assert controller.worst_step() <= 0.08 + 1.5 / 255

    def test_scene_cut_flagged_once(self, pipeline):
        controller = TemporalBacklightController(pipeline, max_distortion=15.0)
        flags = [controller.submit(frame).scene_change for frame in make_clip()]
        assert flags[0] is True            # first frame
        assert any(flags[1:])              # the cut in the middle
        assert flags.count(True) <= 3      # but not every frame

    def test_energy_saved_versus_full_backlight(self, pipeline):
        controller = TemporalBacklightController(pipeline, max_distortion=15.0)
        for frame in make_clip():
            controller.submit(frame)
        assert controller.energy() < controller.reference_energy()
        assert 0.0 < controller.energy_saving_percent() < 100.0

    def test_requested_vs_applied_tracking(self, pipeline):
        controller = TemporalBacklightController(
            pipeline, max_distortion=15.0,
            smoother=BacklightSmoother(smoothing=1.0, max_step=1.0))
        outcome = controller.submit(make_clip()[0])
        # with no smoothing the applied factor equals the requested one up to
        # the 1-level rounding of the dynamic range
        assert outcome.applied_backlight == pytest.approx(
            outcome.requested_backlight, abs=1.5 / 255)

    def test_history_and_trace(self, pipeline):
        controller = TemporalBacklightController(pipeline, max_distortion=15.0,
                                                 adaptive=False)
        clip = make_clip(n_frames=4)
        for frame in clip:
            controller.submit(frame)
        assert len(controller.history) == 4
        assert controller.backlight_trace().shape == (4,)

    def test_validation(self, pipeline):
        with pytest.raises(ValueError, match="non-negative"):
            TemporalBacklightController(pipeline, max_distortion=-1.0)


class TestDataclassHygiene:
    """The private mutable state of the temporal dataclasses must be
    init-excluded, repr-excluded, and honestly annotated."""

    def test_rolling_histogram_weights_field(self):
        import typing

        field = RollingHistogram.__dataclass_fields__["_weights"]
        assert not field.init
        assert not field.repr
        hints = typing.get_type_hints(RollingHistogram)
        assert type(None) in typing.get_args(hints["_weights"])
        assert RollingHistogram().is_empty        # default really is None

    def test_smoother_current_field(self):
        field = BacklightSmoother.__dataclass_fields__["_current"]
        assert not field.init
        assert not field.repr
        # the repr stays a constructor-shaped view of the public knobs
        assert "_current" not in repr(BacklightSmoother(initial=0.5))

    def test_smoother_current_cannot_be_injected(self):
        with pytest.raises(TypeError):
            BacklightSmoother(_current=0.2)

    def test_rolling_weights_cannot_be_injected(self):
        with pytest.raises(TypeError):
            RollingHistogram(_weights=None)
