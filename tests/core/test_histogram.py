"""Unit tests for marginal / cumulative histograms and the uniform target."""

import numpy as np
import pytest

from repro.core.histogram import CumulativeHistogram, Histogram, uniform_cumulative
from repro.imaging.image import Image


class TestHistogramConstruction:
    def test_of_image_counts_every_pixel(self, gradient_image):
        histogram = Histogram.of_image(gradient_image)
        assert histogram.levels == 256
        assert histogram.n_pixels == gradient_image.n_pixels

    def test_of_rgb_image_uses_luma(self, rgb_image):
        histogram = Histogram.of_image(rgb_image)
        assert histogram.n_pixels == rgb_image.n_pixels

    def test_of_flat_image_single_spike(self, flat_image):
        histogram = Histogram.of_image(flat_image)
        assert histogram.counts[128] == flat_image.n_pixels
        assert histogram.counts.sum() == flat_image.n_pixels

    def test_from_probabilities(self):
        histogram = Histogram.from_probabilities(np.array([0.5, 0.25, 0.25]),
                                                 n_pixels=100)
        assert histogram.counts.tolist() == [50, 25, 25]

    def test_from_probabilities_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            Histogram.from_probabilities(np.array([-0.1, 1.1]))
        with pytest.raises(ValueError, match="positive"):
            Histogram.from_probabilities(np.array([0.0, 0.0]))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            Histogram(np.array([1, -1]))
        with pytest.raises(ValueError, match="at least one pixel"):
            Histogram(np.array([0, 0, 0]))
        with pytest.raises(ValueError, match="1-D"):
            Histogram(np.array([[1, 2], [3, 4]]))

    def test_counts_read_only(self, gradient_image):
        histogram = Histogram.of_image(gradient_image)
        with pytest.raises(ValueError):
            histogram.counts[0] = 5


class TestHistogramStatistics:
    def test_probabilities_sum_to_one(self, noisy_image):
        assert Histogram.of_image(noisy_image).probabilities().sum() == \
            pytest.approx(1.0)

    def test_occupied_range(self):
        histogram = Histogram(np.array([0, 5, 3, 0, 0, 7, 0]))
        assert histogram.min_level() == 1
        assert histogram.max_level() == 5
        assert histogram.dynamic_range() == 4

    def test_mean_and_variance(self):
        histogram = Histogram(np.array([1, 0, 1]))
        assert histogram.mean() == pytest.approx(1.0)
        assert histogram.variance() == pytest.approx(1.0)

    def test_mean_matches_image(self, lena):
        assert Histogram.of_image(lena).mean() == pytest.approx(lena.mean())

    def test_entropy_uniform_is_maximal(self):
        uniform = Histogram(np.full(256, 10))
        spike = Histogram.of_image(Image.constant(7, shape=(8, 8)))
        assert uniform.entropy() == pytest.approx(8.0)
        assert spike.entropy() == pytest.approx(0.0)

    def test_entropy_between_bounds(self, lena):
        entropy = Histogram.of_image(lena).entropy()
        assert 0.0 < entropy <= 8.0

    def test_l1_distance(self):
        a = Histogram(np.array([10, 0]))
        b = Histogram(np.array([0, 10]))
        assert a.l1_distance(b) == pytest.approx(1.0)
        assert a.l1_distance(a) == 0.0

    def test_l1_distance_level_mismatch(self):
        with pytest.raises(ValueError, match="same number of levels"):
            Histogram(np.array([1, 1])).l1_distance(Histogram(np.array([1, 1, 1])))

    def test_equality_and_hash(self):
        a = Histogram(np.array([1, 2, 3]))
        b = Histogram(np.array([1, 2, 3]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Histogram(np.array([3, 2, 1]))


class TestCumulativeHistogram:
    def test_cumulative_of_marginal(self):
        marginal = Histogram(np.array([1, 2, 3]))
        cumulative = marginal.cumulative()
        assert cumulative.values.tolist() == [1, 3, 6]
        assert cumulative.n_pixels == 6

    def test_round_trip(self, lena):
        marginal = Histogram.of_image(lena)
        assert marginal.cumulative().marginal() == marginal

    def test_normalized_ends_at_one(self, lena):
        cumulative = Histogram.of_image(lena).cumulative()
        assert cumulative.normalized()[-1] == pytest.approx(1.0)

    def test_validation_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CumulativeHistogram(np.array([3.0, 2.0, 5.0]))

    def test_validation_positive_total(self):
        with pytest.raises(ValueError, match="positive total"):
            CumulativeHistogram(np.array([0.0, 0.0]))

    def test_l1_distance_identical_is_zero(self, lena):
        cumulative = Histogram.of_image(lena).cumulative()
        assert cumulative.l1_distance(cumulative) == 0.0

    def test_l1_distance_level_mismatch(self):
        a = CumulativeHistogram(np.array([1.0, 2.0]))
        b = CumulativeHistogram(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match="same levels"):
            a.l1_distance(b)

    def test_equality_and_hash(self):
        a = CumulativeHistogram(np.array([1.0, 2.0]))
        b = CumulativeHistogram(np.array([1.0, 2.0]))
        assert a == b and hash(a) == hash(b)


class TestUniformCumulative:
    def test_footnote3_shape(self):
        """U(x) = 0 below g_min, ramps linearly, saturates at N above g_max."""
        target = uniform_cumulative(levels=256, n_pixels=1000, g_min=50, g_max=150)
        values = target.values
        assert values[49] == 0.0
        assert values[50] == 0.0
        assert values[150] == pytest.approx(1000.0)
        assert values[255] == pytest.approx(1000.0)
        assert values[100] == pytest.approx(1000.0 * 50 / 100)

    def test_ramp_is_linear(self):
        target = uniform_cumulative(levels=64, n_pixels=100, g_min=10, g_max=50)
        ramp = target.values[10:51]
        assert np.allclose(np.diff(ramp), 100 / 40)

    def test_validation(self):
        with pytest.raises(ValueError, match="g_min < g_max"):
            uniform_cumulative(256, 100, 100, 100)
        with pytest.raises(ValueError, match="g_min < g_max"):
            uniform_cumulative(256, 100, -1, 100)
        with pytest.raises(ValueError, match="g_min < g_max"):
            uniform_cumulative(256, 100, 0, 256)
        with pytest.raises(ValueError, match="n_pixels"):
            uniform_cumulative(256, 0, 0, 255)
