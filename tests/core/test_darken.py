"""Unit tests for the inverted (emissive) optimization: content darkening."""

import numpy as np
import pytest

from repro.core.darken import (
    ContentDarkener,
    DarkenSolution,
    DEFAULT_SAFETY_MARGINS,
    darkening_transform,
)
from repro.core.histogram import Histogram
from repro.core.transforms import LUTTransform
from repro.display.oled import OLEDPowerBreakdown


class TestDarkeningTransform:
    def test_never_brightens(self, baboon):
        histogram = Histogram.of_image(baboon.to_grayscale())
        transform = darkening_transform(histogram, 128)
        identity = np.linspace(0.0, 1.0, histogram.levels)
        assert np.all(np.asarray(transform.table) <= identity + 1e-12)

    def test_monotone(self, baboon):
        histogram = Histogram.of_image(baboon.to_grayscale())
        table = np.asarray(darkening_transform(histogram, 64).table)
        assert np.all(np.diff(table) >= -1e-12)

    def test_respects_target_range(self, baboon):
        histogram = Histogram.of_image(baboon.to_grayscale())
        target_range = 100
        table = np.asarray(darkening_transform(histogram, target_range).table)
        assert table.max() <= target_range / (histogram.levels - 1) + 1e-12

    def test_pointwise_nondecreasing_in_range(self, baboon):
        """The bisection's monotonicity premise."""
        histogram = Histogram.of_image(baboon.to_grayscale())
        smaller = np.asarray(darkening_transform(histogram, 64).table)
        larger = np.asarray(darkening_transform(histogram, 192).table)
        assert np.all(smaller <= larger + 1e-12)

    def test_uniform_histogram_is_near_identity_at_full_range(self):
        """Equalizing an already-uniform image onto [0, L-1] changes little."""
        histogram = Histogram(np.full(256, 4))
        table = np.asarray(darkening_transform(histogram, 255).table)
        identity = np.linspace(0.0, 1.0, 256)
        assert np.max(identity - table) < 0.02

    def test_range_validation(self, baboon):
        histogram = Histogram.of_image(baboon.to_grayscale())
        with pytest.raises(ValueError):
            darkening_transform(histogram, 0)
        with pytest.raises(ValueError):
            darkening_transform(histogram, 256)

    def test_clipped_variant(self, baboon):
        histogram = Histogram.of_image(baboon.to_grayscale())
        transform = darkening_transform(histogram, 128,
                                        equalization="clipped")
        identity = np.linspace(0.0, 1.0, histogram.levels)
        assert np.all(np.asarray(transform.table) <= identity + 1e-12)


class TestContentDarkener:
    def test_rejects_bbhe(self):
        with pytest.raises(ValueError, match="ghe.*clipped"):
            ContentDarkener(equalization="bbhe")

    def test_default_safety_margin_is_calibrated(self):
        assert ContentDarkener().safety_margin == DEFAULT_SAFETY_MARGINS["ghe"]
        clipped = ContentDarkener(equalization="clipped")
        assert clipped.safety_margin == DEFAULT_SAFETY_MARGINS["clipped"]

    def test_safety_margin_validation(self):
        with pytest.raises(ValueError):
            ContentDarkener(safety_margin=0.0)
        with pytest.raises(ValueError):
            ContentDarkener(safety_margin=1.5)

    def test_budget_honored_on_suite(self, small_suite):
        darkener = ContentDarkener()
        budget = 10.0
        for image in small_suite.values():
            result = darkener.process(image, budget)
            assert result.distortion <= budget

    def test_power_saving_positive_under_real_budget(self, baboon):
        result = ContentDarkener().process(baboon, 10.0)
        assert result.power_saving > 0.10
        assert isinstance(result.power, OLEDPowerBreakdown)
        assert result.power.total < result.reference_power.total

    def test_zero_budget_falls_back_to_identity(self, baboon):
        solution = ContentDarkener().solve(baboon, 0.0)
        assert solution.identity
        result = ContentDarkener().apply_solution(solution, baboon)
        assert result.distortion == pytest.approx(0.0, abs=1e-9)
        assert np.array_equal(result.output.pixels,
                              baboon.to_grayscale().pixels)

    def test_larger_budget_darkens_at_least_as_hard(self, baboon):
        darkener = ContentDarkener()
        loose = darkener.solve(baboon, 20.0)
        tight = darkener.solve(baboon, 5.0)
        assert loose.target_range <= tight.target_range

    def test_solve_is_histogram_only(self, baboon):
        """Fig.-4 discipline: Image and its bare Histogram solve identically."""
        darkener = ContentDarkener()
        histogram = Histogram.of_image(baboon.to_grayscale())
        from_image = darkener.solve(baboon, 10.0)
        from_histogram = darkener.solve(histogram, 10.0)
        assert from_image == from_histogram

    def test_solve_range_skips_search(self, baboon):
        solution = ContentDarkener().solve_range(baboon, 80)
        assert solution.target_range == 80
        assert not solution.identity
        assert isinstance(solution, DarkenSolution)
        assert isinstance(solution.transform, LUTTransform)

    def test_apply_rejects_level_mismatch(self, baboon):
        solution = ContentDarkener().solve(baboon, 10.0)
        small = Histogram(np.full(16, 4)).to_image()
        with pytest.raises(ValueError, match="levels"):
            ContentDarkener().apply_solution(solution, small)

    def test_min_range_floor(self, flat_image):
        """A flat image darkens for free; the floor stops the collapse."""
        darkener = ContentDarkener(min_range=32)
        selected = darkener.select_range(flat_image, 50.0)
        assert selected == 32

    def test_negative_budget_rejected(self, baboon):
        with pytest.raises(ValueError):
            ContentDarkener().select_range(baboon, -1.0)

    def test_output_never_brighter(self, small_suite):
        darkener = ContentDarkener()
        for image in small_suite.values():
            result = darkener.process(image, 15.0)
            assert np.all(result.output.pixels
                          <= result.original.pixels)

    def test_clipped_darkener_end_to_end(self, baboon):
        result = ContentDarkener(equalization="clipped").process(baboon, 10.0)
        assert result.distortion <= 10.0
        assert result.power_saving > 0.0
