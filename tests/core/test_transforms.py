"""Unit tests for the pixel-transformation-function family (Fig. 2)."""

import numpy as np
import pytest

from repro.core.transforms import (
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    IdentityTransform,
    LUTTransform,
    PiecewiseLinearTransform,
    SingleBandSpreadTransform,
)
from repro.imaging.image import Image


class TestIdentity:
    def test_maps_values_to_themselves(self):
        transform = IdentityTransform()
        x = np.linspace(0, 1, 11)
        assert np.allclose(transform(x), x)

    def test_apply_preserves_image(self, gradient_image):
        assert IdentityTransform().apply(gradient_image) == gradient_image

    def test_lut_is_ramp(self):
        assert np.array_equal(IdentityTransform().lut(), np.arange(256))

    def test_monotone(self):
        assert IdentityTransform().is_monotone()


class TestGrayscaleShift:
    """Eq. 2a: Phi(x, beta) = min(1, x + 1 - beta)."""

    def test_matches_equation(self):
        transform = GrayscaleShiftTransform(beta=0.6)
        assert transform(0.0) == pytest.approx(0.4)
        assert transform(0.5) == pytest.approx(0.9)
        assert transform(0.7) == pytest.approx(1.0)   # saturates

    def test_beta_one_is_identity(self):
        transform = GrayscaleShiftTransform(beta=1.0)
        x = np.linspace(0, 1, 7)
        assert np.allclose(transform(x), x)

    def test_luminance_preserved_for_non_saturating_pixels(self):
        """beta * t(Phi(x)) == t(x) - the DLS compensation goal - holds
        approximately for dark pixels under the ideal transmissivity only in
        the contrast variant; the shift variant preserves the *difference*.
        """
        beta = 0.7
        transform = GrayscaleShiftTransform(beta)
        x = np.array([0.1, 0.3, 0.5])
        assert np.allclose(transform(x) - x, 1 - beta)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            GrayscaleShiftTransform(0.0)
        with pytest.raises(ValueError, match="beta"):
            GrayscaleShiftTransform(1.2)

    def test_monotone(self):
        assert GrayscaleShiftTransform(0.5).is_monotone()


class TestGrayscaleSpread:
    """Eq. 2b: Phi(x, beta) = min(1, x / beta)."""

    def test_matches_equation(self):
        transform = GrayscaleSpreadTransform(beta=0.5)
        assert transform(0.2) == pytest.approx(0.4)
        assert transform(0.5) == pytest.approx(1.0)
        assert transform(0.8) == pytest.approx(1.0)   # saturates

    def test_luminance_preserved_below_beta(self):
        beta = 0.6
        transform = GrayscaleSpreadTransform(beta)
        x = np.array([0.0, 0.2, 0.5])
        assert np.allclose(beta * np.asarray(transform(x)), x)

    def test_beta_one_is_identity(self):
        x = np.linspace(0, 1, 5)
        assert np.allclose(GrayscaleSpreadTransform(1.0)(x), x)

    def test_validation(self):
        with pytest.raises(ValueError, match="beta"):
            GrayscaleSpreadTransform(-0.1)

    def test_apply_saturates_bright_pixels(self, gradient_image):
        bright = GrayscaleSpreadTransform(0.5).apply(gradient_image)
        assert (bright.pixels == 255).mean() > 0.4


class TestSingleBandSpread:
    """Eq. 3: the ref. [5] transfer function."""

    def test_matches_equation(self):
        transform = SingleBandSpreadTransform(g_low=0.2, g_high=0.7)
        assert transform(0.1) == 0.0
        assert transform(0.2) == pytest.approx(0.0)
        assert transform(0.45) == pytest.approx(0.5)
        assert transform(0.7) == pytest.approx(1.0)
        assert transform(0.9) == 1.0

    def test_slope(self):
        assert SingleBandSpreadTransform(0.25, 0.75).slope == pytest.approx(2.0)

    def test_from_backlight_factor_band_width(self):
        transform = SingleBandSpreadTransform.from_backlight_factor(0.4, center=0.5)
        assert transform.g_high - transform.g_low == pytest.approx(0.4)
        assert transform.g_low == pytest.approx(0.3)

    def test_from_backlight_factor_clamps_to_edges(self):
        low_band = SingleBandSpreadTransform.from_backlight_factor(0.4, center=0.1)
        assert low_band.g_low == 0.0
        high_band = SingleBandSpreadTransform.from_backlight_factor(0.4, center=0.95)
        assert high_band.g_high == pytest.approx(1.0)

    def test_from_backlight_factor_full(self):
        transform = SingleBandSpreadTransform.from_backlight_factor(1.0)
        assert (transform.g_low, transform.g_high) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="g_low < g_high"):
            SingleBandSpreadTransform(0.7, 0.2)
        with pytest.raises(ValueError, match="beta"):
            SingleBandSpreadTransform.from_backlight_factor(0.0)

    def test_monotone(self):
        assert SingleBandSpreadTransform(0.1, 0.9).is_monotone()


class TestPiecewiseLinear:
    def test_interpolation(self):
        transform = PiecewiseLinearTransform((0.0, 0.5, 1.0), (0.0, 0.8, 1.0))
        assert transform(0.25) == pytest.approx(0.4)
        assert transform(0.75) == pytest.approx(0.9)

    def test_n_segments_and_slopes(self):
        transform = PiecewiseLinearTransform((0.0, 0.5, 1.0), (0.0, 0.8, 1.0))
        assert transform.n_segments == 2
        assert np.allclose(transform.slopes(), [1.6, 0.4])

    def test_validation_monotone_x(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseLinearTransform((0.0, 0.0, 1.0), (0.0, 0.5, 1.0))

    def test_validation_monotone_y(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PiecewiseLinearTransform((0.0, 0.5, 1.0), (0.0, 0.9, 0.5))

    def test_validation_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            PiecewiseLinearTransform((0.0, 1.5), (0.0, 1.0))

    def test_apply_to_image(self, gradient_image):
        transform = PiecewiseLinearTransform((0.0, 1.0), (0.0, 0.5))
        halved = transform.apply(gradient_image)
        assert halved.max() <= 128

    def test_flat_band_in_the_middle(self):
        transform = PiecewiseLinearTransform((0.0, 0.4, 0.6, 1.0),
                                             (0.0, 0.5, 0.5, 1.0))
        assert transform(0.45) == pytest.approx(0.5)
        assert transform(0.55) == pytest.approx(0.5)


class TestLUTTransform:
    def test_table_lookup(self):
        table = tuple(np.linspace(0, 1, 256) ** 2)
        transform = LUTTransform(table)
        assert transform.levels == 256
        assert transform(1.0) == pytest.approx(1.0)
        assert transform(0.0) == pytest.approx(0.0)

    def test_validation_range(self):
        with pytest.raises(ValueError, match="normalized"):
            LUTTransform((0.0, 1.5))

    def test_validation_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            LUTTransform((0.0, 0.8, 0.5))

    def test_lut_round_trip(self, gradient_image):
        table = tuple(np.linspace(0, 1, 256))
        assert LUTTransform(table).apply(gradient_image) == gradient_image

    def test_monotone_check(self):
        assert LUTTransform(tuple(np.linspace(0, 1, 64))).is_monotone()
