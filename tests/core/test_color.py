"""Unit tests for colour-LCD support (ColorHEBS)."""

import numpy as np
import pytest

from repro.core.color import ColorHEBS
from repro.imaging.image import Image


@pytest.fixture(scope="module")
def color_image():
    """A reproducible RGB test scene with correlated channels."""
    rng = np.random.default_rng(99)
    base = np.clip(rng.normal(0.5, 0.2, size=(64, 64)), 0, 1)
    rgb = np.stack([
        np.clip(base * 1.1, 0, 1),
        base,
        np.clip(base * 0.8 + 0.05, 0, 1),
    ], axis=2)
    return Image.from_float(rgb, name="color-scene")


class TestConstruction:
    def test_mode_validation(self, pipeline):
        with pytest.raises(ValueError, match="unknown mode"):
            ColorHEBS(pipeline, mode="hsv")

    def test_modes_accepted(self, pipeline):
        assert ColorHEBS(pipeline, mode="per_channel").mode == "per_channel"
        assert ColorHEBS(pipeline, mode="luminance_scaled").mode == "luminance_scaled"


class TestPerChannel:
    def test_output_is_rgb_with_same_shape(self, pipeline, color_image):
        result = ColorHEBS(pipeline).process_with_range(color_image, 180)
        assert not result.transformed.is_grayscale
        assert result.transformed.shape == color_image.shape

    def test_every_channel_respects_the_range(self, pipeline, color_image):
        result = ColorHEBS(pipeline).process_with_range(color_image, 150)
        for channel_range in result.channel_ranges():
            assert channel_range <= 150

    def test_backlight_and_power_come_from_luminance_plane(self, pipeline,
                                                           color_image):
        color = ColorHEBS(pipeline).process_with_range(color_image, 150)
        gray = pipeline.process_with_range(color_image.to_grayscale(), 150)
        assert color.backlight_factor == pytest.approx(gray.backlight_factor)
        assert color.power_saving_percent == pytest.approx(
            gray.power_saving_percent)
        assert color.distortion == pytest.approx(gray.distortion)

    def test_channel_order_is_preserved(self, pipeline, color_image):
        """The red channel is brighter than blue in the source; a monotone
        shared transform keeps that ordering."""
        result = ColorHEBS(pipeline).process_with_range(color_image, 180)
        red = result.transformed.channel(0).mean()
        blue = result.transformed.channel(2).mean()
        assert red >= blue

    def test_grayscale_input_passes_through(self, pipeline, lena):
        result = ColorHEBS(pipeline).process_with_range(lena, 150)
        assert result.transformed.is_grayscale
        assert result.transformed == result.luminance_result.transformed


class TestLuminanceScaled:
    def test_preserves_channel_ratios(self, pipeline, color_image):
        result = ColorHEBS(pipeline, mode="luminance_scaled").process_with_range(
            color_image, 150)
        original = color_image.as_float() + 1e-6
        transformed = result.transformed.as_float() + 1e-6
        original_ratio = original[:, :, 0] / original[:, :, 1]
        transformed_ratio = transformed[:, :, 0] / transformed[:, :, 1]
        # hue (channel ratio) is approximately preserved away from saturation
        interior = (transformed.max(axis=2) < 0.95) & (original.max(axis=2) < 0.95)
        assert np.median(np.abs(original_ratio[interior]
                                - transformed_ratio[interior])) < 0.1

    def test_budget_interface(self, pipeline, color_image):
        result = ColorHEBS(pipeline, mode="luminance_scaled").process_adaptive(
            color_image, 10.0)
        assert result.distortion <= 10.0 + 1e-6


class TestBudgetModes:
    def test_process_uses_curve(self, pipeline, color_image):
        result = ColorHEBS(pipeline).process(color_image, 10.0)
        assert result.luminance_result.target_range == pipeline.select_range(10.0)

    def test_adaptive_meets_budget(self, pipeline, color_image):
        result = ColorHEBS(pipeline).process_adaptive(color_image, 8.0)
        assert result.distortion <= 8.0 + 1e-6
        assert result.power_saving_percent > 0.0
