"""Unit tests for Piecewise Linear Coarsening (Eq. 8-9, Fig. 3)."""

import numpy as np
import pytest

from repro.core.equalization import equalize_histogram
from repro.core.plc import (
    PiecewiseLinearCurve,
    chord_error_matrix,
    coarsen_curve,
    coarsen_transform,
    kband_spreading_function,
    segment_error,
)
from repro.core.transforms import LUTTransform


def quadratic_curve(n: int = 65) -> PiecewiseLinearCurve:
    x = np.linspace(0, 255, n)
    y = (x / 255.0) ** 2 * 255.0
    return PiecewiseLinearCurve(tuple(x), tuple(y))


class TestCurve:
    def test_basic_properties(self):
        curve = PiecewiseLinearCurve((0.0, 128.0, 255.0), (0.0, 64.0, 255.0))
        assert curve.n_points == 3
        assert curve.n_segments == 2
        assert curve.is_monotone()
        assert np.allclose(curve.slopes(), [0.5, 191.0 / 127.0])

    def test_evaluation(self):
        curve = PiecewiseLinearCurve((0.0, 100.0), (0.0, 50.0))
        assert curve(50.0) == pytest.approx(25.0)
        assert curve(np.array([0.0, 100.0])).tolist() == [0.0, 50.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseLinearCurve((0.0, 0.0), (0.0, 1.0))
        with pytest.raises(ValueError, match=">= 2 points"):
            PiecewiseLinearCurve((0.0,), (0.0,))
        with pytest.raises(ValueError, match="negative"):
            PiecewiseLinearCurve((0.0, 1.0), (0.0, 1.0), mean_squared_error=-1.0)

    def test_from_lut(self):
        lut = LUTTransform(tuple(np.linspace(0, 1, 256)))
        curve = PiecewiseLinearCurve.from_lut(lut)
        assert curve.n_points == 256
        assert curve.breakpoint_indices == tuple(range(256))
        assert curve(128.0) == pytest.approx(128.0)


class TestSegmentError:
    def test_zero_for_collinear_points(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [0.0, 2.0, 4.0, 6.0]
        assert segment_error(x, y, 0, 3) == pytest.approx(0.0)

    def test_known_value(self):
        # chord from (0,0) to (2,0); the middle point (1,1) deviates by 1
        assert segment_error([0.0, 1.0, 2.0], [0.0, 1.0, 0.0], 0, 2) == \
            pytest.approx(1.0)

    def test_invalid_indices(self):
        with pytest.raises(ValueError, match="chord indices"):
            segment_error([0.0, 1.0], [0.0, 1.0], 1, 1)

    def test_matrix_matches_direct_computation(self):
        rng = np.random.default_rng(5)
        x = np.sort(rng.random(12)) * 100
        y = np.cumsum(rng.random(12))
        matrix = chord_error_matrix(x, y)
        for i in range(0, 12, 3):
            for j in range(i + 1, 12, 2):
                assert matrix[i, j] == pytest.approx(
                    segment_error(x, y, i, j), abs=1e-8)


class TestCoarsenCurve:
    def test_keeps_endpoints(self):
        curve = quadratic_curve()
        coarse = coarsen_curve(curve, 4)
        assert coarse.x[0] == curve.x[0]
        assert coarse.x[-1] == curve.x[-1]
        assert coarse.y[0] == curve.y[0]
        assert coarse.y[-1] == curve.y[-1]

    def test_breakpoints_subset_of_original(self):
        curve = quadratic_curve()
        coarse = coarsen_curve(curve, 5)
        original_points = set(zip(curve.x, curve.y))
        assert set(zip(coarse.x, coarse.y)) <= original_points

    def test_requested_segment_count(self):
        curve = quadratic_curve()
        for m in (1, 2, 3, 6, 10):
            assert coarsen_curve(curve, m).n_segments == m

    def test_error_decreases_with_more_segments(self):
        curve = quadratic_curve(n=129)
        errors = [coarsen_curve(curve, m).mean_squared_error
                  for m in (1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_exact_when_enough_segments(self):
        curve = PiecewiseLinearCurve((0.0, 50.0, 100.0, 255.0),
                                     (0.0, 10.0, 180.0, 255.0))
        coarse = coarsen_curve(curve, 3)
        assert coarse.mean_squared_error == pytest.approx(0.0)
        assert coarse.x == curve.x

    def test_more_segments_than_points_returns_curve(self):
        curve = PiecewiseLinearCurve((0.0, 100.0, 255.0), (0.0, 90.0, 255.0))
        coarse = coarsen_curve(curve, 10)
        assert coarse.x == curve.x
        assert coarse.mean_squared_error == 0.0

    def test_single_segment_is_end_to_end_chord(self):
        curve = quadratic_curve()
        coarse = coarsen_curve(curve, 1)
        assert coarse.n_points == 2
        assert coarse.x == (curve.x[0], curve.x[-1])

    def test_dp_is_optimal_against_brute_force(self):
        """The Eq. (9) dynamic program must match exhaustive search on a
        small instance."""
        from itertools import combinations
        rng = np.random.default_rng(11)
        x = np.arange(10, dtype=float)
        y = np.cumsum(rng.random(10)) * 20
        curve = PiecewiseLinearCurve(tuple(x), tuple(y))
        m = 3
        coarse = coarsen_curve(curve, m)

        best = np.inf
        for interior in combinations(range(1, 9), m - 1):
            indices = [0, *interior, 9]
            total = sum(segment_error(x, y, indices[k], indices[k + 1])
                        for k in range(m))
            best = min(best, total)
        assert coarse.mean_squared_error * 10 == pytest.approx(best, abs=1e-8)

    def test_monotone_input_gives_monotone_output(self, lena):
        ghe = equalize_histogram(lena, 0, 180)
        coarse = coarsen_transform(ghe.transform, 6)
        assert coarse.is_monotone()

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one segment"):
            coarsen_curve(quadratic_curve(), 0)


class TestKBandSpreadingFunction:
    def test_normalized_and_monotone(self, lena):
        ghe = equalize_histogram(lena, 0, 128)
        coarse = coarsen_transform(ghe.transform, 5)
        transform = kband_spreading_function(coarse)
        assert transform.is_monotone()
        assert 0.0 <= min(transform.y_breaks) <= max(transform.y_breaks) <= 1.0

    def test_tracks_the_coarse_curve(self, lena):
        ghe = equalize_histogram(lena, 0, 128)
        coarse = coarsen_transform(ghe.transform, 8)
        transform = kband_spreading_function(coarse)
        grid_levels = np.linspace(0, 255, 32)
        expected = np.asarray(coarse(grid_levels)) / 255.0
        actual = np.asarray(transform(grid_levels / 255.0))
        assert np.allclose(actual, expected, atol=0.02)

    def test_rejects_non_monotone_curve(self):
        curve = PiecewiseLinearCurve((0.0, 100.0, 255.0), (0.0, 200.0, 100.0))
        with pytest.raises(ValueError, match="monotone"):
            kband_spreading_function(curve)

    def test_approximation_error_matches_reported_mse(self, lena):
        """The reported PLC error is the mean squared vertical deviation at
        the original breakpoints."""
        ghe = equalize_histogram(lena, 0, 150)
        exact = PiecewiseLinearCurve.from_lut(ghe.transform)
        coarse = coarsen_curve(exact, 4)
        deviations = np.asarray(exact.y) - np.asarray(coarse(np.asarray(exact.x)))
        assert coarse.mean_squared_error == pytest.approx(
            float(np.mean(deviations**2)), rel=1e-6)
