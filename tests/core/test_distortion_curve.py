"""Unit tests for the distortion characteristic curve (Sec. 3, 5.1c, Fig. 7)."""

import numpy as np
import pytest

from repro.core.distortion_curve import (
    DEFAULT_RANGE_GRID,
    DistortionCharacteristicCurve,
    DistortionSample,
    build_distortion_curve,
)


class TestBuild:
    @pytest.fixture(scope="class")
    def small_curve(self, small_suite):
        return build_distortion_curve(small_suite,
                                      target_ranges=(60, 120, 180, 240))

    def test_sample_count(self, small_curve, small_suite):
        assert len(small_curve.samples) == len(small_suite) * 4

    def test_samples_record_names_and_ranges(self, small_curve, small_suite):
        names = {sample.image_name for sample in small_curve.samples}
        assert names == set(small_suite)
        ranges = {sample.target_range for sample in small_curve.samples}
        assert ranges == {60, 120, 180, 240}

    def test_distortion_decreases_with_range_on_average(self, small_curve):
        by_range = {}
        for sample in small_curve.samples:
            by_range.setdefault(sample.target_range, []).append(sample.distortion)
        means = [np.mean(by_range[r]) for r in sorted(by_range)]
        assert means == sorted(means, reverse=True)

    def test_accepts_iterable_of_images(self, small_suite):
        curve = build_distortion_curve(list(small_suite.values()),
                                       target_ranges=(100, 200))
        assert len(curve.samples) == len(small_suite) * 2

    def test_accepts_callable_measure(self, small_suite):
        curve = build_distortion_curve(
            small_suite, target_ranges=(100, 200),
            measure=lambda a, b: 50.0)
        assert all(sample.distortion == 50.0 for sample in curve.samples)

    def test_validation(self, small_suite):
        with pytest.raises(ValueError, match="at least one benchmark"):
            build_distortion_curve({}, target_ranges=(100, 200))
        with pytest.raises(ValueError, match="at least two target ranges"):
            build_distortion_curve(small_suite, target_ranges=(100,))
        with pytest.raises(ValueError, match="not realizable"):
            build_distortion_curve(small_suite, target_ranges=(100, 300))

    def test_default_grid_matches_paper_ten_values(self):
        assert len(DEFAULT_RANGE_GRID) == 10
        assert min(DEFAULT_RANGE_GRID) == 50
        assert max(DEFAULT_RANGE_GRID) == 250


class TestCurvePrediction:
    def test_worst_case_dominates_dataset_fit(self, characteristic_curve):
        grid = np.linspace(50, 250, 21)
        dataset = np.asarray(characteristic_curve.predict(grid))
        worst = np.asarray(characteristic_curve.predict(grid, worst_case=True))
        assert np.all(worst >= dataset - 1e-9)

    def test_worst_case_dominates_every_sample(self, characteristic_curve):
        ranges, distortions = characteristic_curve.sample_arrays()
        predicted = np.asarray(characteristic_curve.predict(ranges, worst_case=True))
        assert np.all(predicted >= distortions - 1e-6)

    def test_prediction_nonnegative(self, characteristic_curve):
        assert np.all(np.asarray(characteristic_curve.predict(
            np.linspace(1, 255, 50))) >= 0.0)

    def test_scalar_prediction(self, characteristic_curve):
        value = characteristic_curve.predict(150)
        assert isinstance(value, float)
        assert value > 0.0

    def test_fig7_shape(self, characteristic_curve):
        """Distortion grows as the target dynamic range shrinks."""
        assert characteristic_curve.predict(60) > characteristic_curve.predict(150)
        assert characteristic_curve.predict(150) > characteristic_curve.predict(245)


class TestRangeSelection:
    def test_monotone_in_budget(self, characteristic_curve):
        budgets = (2.0, 5.0, 10.0, 20.0, 40.0)
        ranges = [characteristic_curve.min_range_for_distortion(b, worst_case=False)
                  for b in budgets]
        assert ranges == sorted(ranges, reverse=True)

    def test_worst_case_is_more_conservative(self, characteristic_curve):
        for budget in (5.0, 10.0, 20.0):
            assert characteristic_curve.min_range_for_distortion(
                budget, worst_case=True) >= \
                characteristic_curve.min_range_for_distortion(
                    budget, worst_case=False)

    def test_tiny_budget_returns_full_range(self, characteristic_curve):
        assert characteristic_curve.min_range_for_distortion(0.0) == \
            characteristic_curve.levels - 1

    def test_huge_budget_returns_small_range(self, characteristic_curve):
        assert characteristic_curve.min_range_for_distortion(
            95.0, worst_case=False) <= 60

    def test_selected_range_meets_budget(self, characteristic_curve):
        for budget in (8.0, 15.0, 30.0):
            selected = characteristic_curve.min_range_for_distortion(
                budget, worst_case=False)
            if selected < characteristic_curve.levels - 1:
                assert characteristic_curve.predict(selected) <= budget + 1e-6

    def test_negative_budget_rejected(self, characteristic_curve):
        with pytest.raises(ValueError, match="non-negative"):
            characteristic_curve.min_range_for_distortion(-1.0)


class TestDataclassValidation:
    def test_coefficient_length_mismatch(self):
        with pytest.raises(ValueError, match="same polynomial degree"):
            DistortionCharacteristicCurve((1.0, 2.0), (1.0, 2.0, 3.0))

    def test_minimum_degree(self):
        with pytest.raises(ValueError, match="linear fit"):
            DistortionCharacteristicCurve((1.0,), (1.0,))

    def test_sample_record(self):
        sample = DistortionSample("lena", 100, 12.5)
        assert sample.image_name == "lena"
        assert sample.target_range == 100
        assert sample.distortion == 12.5
