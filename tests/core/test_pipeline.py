"""Unit and integration tests for the end-to-end HEBS pipeline (Fig. 4)."""

import numpy as np
import pytest

from repro.core.pipeline import HEBS, HEBSConfig
from repro.display.power import DisplayPowerModel
from repro.quality.distortion import get_measure


class TestConfig:
    def test_defaults_follow_paper(self):
        config = HEBSConfig()
        assert config.n_segments == 8
        assert config.g_min == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_segments"):
            HEBSConfig(n_segments=0)
        with pytest.raises(ValueError, match="g_min"):
            HEBSConfig(g_min=-1)
        with pytest.raises(ValueError, match="sources"):
            HEBSConfig(n_segments=8, driver_sources=4)
        with pytest.raises(ValueError, match="vdd"):
            HEBSConfig(vdd=0.0)


class TestRangeAndBacklightSelection:
    def test_select_range_monotone_in_budget(self, pipeline):
        assert pipeline.select_range(5.0) >= pipeline.select_range(20.0)

    def test_backlight_factor_for_range_ideal_transmissivity(self, pipeline):
        assert pipeline.backlight_factor_for_range(255) == pytest.approx(1.0)
        assert pipeline.backlight_factor_for_range(128) == pytest.approx(128 / 255)

    def test_backlight_factor_with_g_min_offset(self, characteristic_curve):
        offset_pipeline = HEBS(characteristic_curve, HEBSConfig(g_min=20))
        plain_pipeline = HEBS(characteristic_curve)
        assert offset_pipeline.backlight_factor_for_range(150) > \
            plain_pipeline.backlight_factor_for_range(150)

    def test_backlight_factor_range_validation(self, pipeline):
        with pytest.raises(ValueError, match="target range"):
            pipeline.backlight_factor_for_range(300)


class TestProcessWithRange:
    def test_result_consistency(self, pipeline, lena):
        result = pipeline.process_with_range(lena, 180)
        assert result.target_range == 180
        assert result.transformed.max() <= 180
        assert result.backlight_factor == pytest.approx(180 / 255)
        assert result.coarse_curve.n_segments <= pipeline.config.n_segments
        assert result.driver_program.backlight_factor == result.backlight_factor
        assert result.power.total < result.reference_power.total
        assert 0.0 < result.power_saving < 1.0
        assert result.power_saving_percent == pytest.approx(
            100 * result.power_saving)

    def test_distortion_matches_configured_measure(self, pipeline, lena):
        result = pipeline.process_with_range(lena, 150)
        measure = get_measure("effective")
        assert result.distortion == pytest.approx(
            measure(result.original, result.transformed))

    def test_smaller_range_saves_more_power(self, pipeline, lena):
        mild = pipeline.process_with_range(lena, 220)
        aggressive = pipeline.process_with_range(lena, 100)
        assert aggressive.power_saving > mild.power_saving
        assert aggressive.distortion >= mild.distortion

    def test_fig8_magnitudes(self, pipeline, lena):
        """Fig. 8 regime: ~25-30% saving at R=220, ~45-60% at R=100."""
        mild = pipeline.process_with_range(lena, 220)
        aggressive = pipeline.process_with_range(lena, 100)
        assert 20.0 < mild.power_saving_percent < 35.0
        assert 45.0 < aggressive.power_saving_percent < 65.0

    def test_transform_realizable_by_the_driver(self, pipeline, lena):
        result = pipeline.process_with_range(lena, 160)
        assert pipeline.driver.can_realize(
            np.asarray(result.coarse_curve.x), np.asarray(result.coarse_curve.y))

    def test_driver_program_compensates_by_beta(self, pipeline, lena):
        """Eq. (10): programmed voltages are the Lambda outputs divided by
        beta (until they clamp at Vdd)."""
        result = pipeline.process_with_range(lena, 128)
        program = result.driver_program
        y = np.asarray(result.coarse_curve.y)
        expected = np.minimum(
            pipeline.driver.vdd * (y / 255.0) / result.backlight_factor,
            pipeline.driver.vdd)
        assert np.allclose(program.reference_voltages, expected, atol=1e-9)

    def test_rgb_input_converted(self, pipeline, rgb_image):
        result = pipeline.process_with_range(rgb_image, 180)
        assert result.original.is_grayscale

    def test_range_validation(self, pipeline, lena):
        with pytest.raises(ValueError, match="target range"):
            pipeline.process_with_range(lena, 0)
        with pytest.raises(ValueError, match="target range"):
            pipeline.process_with_range(lena, 256)

    def test_summary_keys(self, pipeline, lena):
        summary = pipeline.process_with_range(lena, 150).summary()
        for key in ("target_range", "backlight_factor", "distortion_percent",
                    "power_saving_percent", "plc_mse", "n_segments"):
            assert key in summary


class TestProcess:
    def test_budget_to_range_consistency(self, pipeline, lena):
        result = pipeline.process(lena, 10.0)
        assert result.target_range == pipeline.select_range(10.0)
        assert result.max_distortion == 10.0

    def test_larger_budget_saves_more(self, pipeline, lena):
        small = pipeline.process(lena, 5.0)
        large = pipeline.process(lena, 20.0)
        assert large.power_saving >= small.power_saving

    def test_negative_budget_rejected(self, pipeline, lena):
        with pytest.raises(ValueError, match="non-negative"):
            pipeline.process(lena, -1.0)


class TestProcessAdaptive:
    def test_respects_budget_when_feasible(self, pipeline, lena, baboon):
        for image in (lena, baboon):
            for budget in (5.0, 10.0, 20.0):
                result = pipeline.process_adaptive(image, budget)
                assert result.distortion <= budget + 1e-6

    def test_saving_monotone_in_budget(self, pipeline, lena):
        savings = [pipeline.process_adaptive(lena, budget).power_saving_percent
                   for budget in (5.0, 10.0, 20.0)]
        assert savings == sorted(savings)

    def test_table1_regime(self, pipeline, small_suite):
        """Average adaptive saving at a 10% budget is in the Table-1 regime
        (the paper reports ~56%; the synthetic suite lands within +-15 pp)."""
        savings = [pipeline.process_adaptive(image, 10.0).power_saving_percent
                   for image in small_suite.values()]
        assert 40.0 < float(np.mean(savings)) < 70.0

    def test_tight_budget_falls_back_to_full_range(self, pipeline, baboon):
        result = pipeline.process_adaptive(baboon, 0.01)
        assert result.target_range == pipeline.curve.levels - 1

    def test_validation(self, pipeline, lena):
        with pytest.raises(ValueError, match="non-negative"):
            pipeline.process_adaptive(lena, -5.0)
        with pytest.raises(ValueError, match="range_tolerance"):
            pipeline.process_adaptive(lena, 10.0, range_tolerance=0)

    def test_adaptive_beats_or_matches_curve_based(self, pipeline, pout):
        """Per-image selection can exploit an easy image much better than the
        global curve (that is why Table 1 varies per image)."""
        adaptive = pipeline.process_adaptive(pout, 10.0)
        curve_based = pipeline.process(pout, 10.0)
        assert adaptive.power_saving >= curve_based.power_saving - 1e-6


class TestWithConfig:
    def test_with_config_changes_segments(self, pipeline, lena):
        coarse = pipeline.with_config(n_segments=2, driver_sources=2)
        result = coarse.process_with_range(lena, 150)
        assert result.coarse_curve.n_segments <= 2

    def test_more_segments_track_ghe_better(self, pipeline, lena):
        few = pipeline.with_config(n_segments=2, driver_sources=2)
        many = pipeline.with_config(n_segments=12, driver_sources=12)
        assert many.process_with_range(lena, 150).coarse_curve.mean_squared_error <= \
            few.process_with_range(lena, 150).coarse_curve.mean_squared_error

    def test_bit_depth_mismatch_detected(self, pipeline):
        from repro.imaging.image import Image
        ten_bit = Image.constant(500, shape=(16, 16), bit_depth=10)
        with pytest.raises(ValueError, match="levels"):
            pipeline.process_with_range(ten_bit, 150)

    def test_custom_power_model(self, characteristic_curve, lena):
        pipeline = HEBS(characteristic_curve, power_model=DisplayPowerModel())
        result = pipeline.process_with_range(lena, 150)
        assert result.power.total > 0
