"""Unit tests for the Global Histogram Equalization solver (Eq. 4-7)."""

import numpy as np
import pytest

from repro.core.equalization import (
    equalization_objective,
    equalization_transform,
    equalize_histogram,
)
from repro.core.histogram import Histogram
from repro.imaging.image import Image


class TestEqualizationTransform:
    def test_monotone_for_any_histogram(self, lena, baboon, pout, testpat=None):
        for image in (lena, baboon, pout):
            transform = equalization_transform(Histogram.of_image(image), 0, 200)
            table = np.asarray(transform.table)
            assert np.all(np.diff(table) >= -1e-12)

    def test_output_range_respects_limits(self, lena):
        transform = equalization_transform(Histogram.of_image(lena), 40, 180)
        outputs = np.asarray(transform.table) * 255
        assert outputs.min() >= 40 - 0.5
        assert outputs.max() <= 180 + 0.5

    def test_eq5_closed_form(self):
        """Phi(x) = g_min + R * H(x) / N for a hand-computed histogram."""
        histogram = Histogram(np.array([2, 0, 2, 0, 4, 0, 0, 2]))  # N = 10
        transform = equalization_transform(histogram, 0, 7)
        outputs = np.asarray(transform.table) * 7
        cumulative = np.cumsum(histogram.counts) / 10.0
        assert np.allclose(outputs, 7 * cumulative, atol=1e-9)

    def test_uniform_histogram_maps_to_linear_ramp(self):
        histogram = Histogram(np.full(256, 4))
        transform = equalization_transform(histogram, 0, 255)
        outputs = np.asarray(transform.table) * 255
        # H(x)/N is linear, so the transform is the identity up to the
        # inclusive-cumulative convention (a constant step of 255/256)
        assert np.allclose(np.diff(outputs), 255.0 / 256.0, atol=1e-9)

    def test_range_validation(self, lena):
        histogram = Histogram.of_image(lena)
        with pytest.raises(ValueError, match="g_min < g_max"):
            equalization_transform(histogram, 100, 100)
        with pytest.raises(ValueError, match="g_min < g_max"):
            equalization_transform(histogram, 0, 256)
        with pytest.raises(ValueError, match="g_min < g_max"):
            equalization_transform(histogram, -5, 100)


class TestEqualizeHistogram:
    def test_result_fields(self, lena):
        result = equalize_histogram(lena, 10, 210)
        assert result.g_min == 10
        assert result.g_max == 210
        assert result.target_range == 200
        assert result.source_histogram.n_pixels == lena.n_pixels
        assert 0.0 <= result.objective <= 1.0

    def test_transformed_image_dynamic_range_bounded(self, lena, baboon, pout):
        for image in (lena, baboon, pout):
            for target_range in (220, 150, 80):
                result = equalize_histogram(image, 0, target_range)
                transformed = result.apply(image)
                assert transformed.max() <= target_range
                assert transformed.dynamic_range() <= target_range

    def test_equalized_histogram_is_flatter(self, pout):
        """Equalization must reduce the distance to the uniform target."""
        target_range = 200
        result = equalize_histogram(pout, 0, target_range)
        original_cumulative = Histogram.of_image(pout).cumulative()
        original_objective = equalization_objective(original_cumulative, 0,
                                                    target_range)
        assert result.objective <= original_objective

    def test_entropy_increases_for_peaky_histogram(self, pout):
        """Spreading a peaky histogram over the target range raises entropy
        per unit of dynamic range (the paper's 'fully utilize the dynamic
        range' argument)."""
        result = equalize_histogram(pout, 0, 150)
        transformed = result.apply(pout)
        original = Histogram.of_image(pout)
        compressed = Histogram.of_image(transformed)
        # occupied range shrank to <=150 yet the entropy stays comparable
        assert compressed.dynamic_range() <= 150
        assert compressed.entropy() > 0.8 * original.entropy()

    def test_accepts_bare_histogram(self, lena):
        histogram = Histogram.of_image(lena)
        result = equalize_histogram(histogram, 0, 128)
        assert result.source_histogram == histogram

    def test_lut_levels_integer_output(self, lena):
        result = equalize_histogram(lena, 0, 100)
        levels = result.lut_levels()
        assert levels.dtype.kind == "i"
        assert levels.min() >= 0
        assert levels.max() <= 100

    def test_apply_checks_bit_depth(self, lena):
        result = equalize_histogram(lena, 0, 100)
        ten_bit = Image.constant(500, shape=(8, 8), bit_depth=10)
        with pytest.raises(ValueError, match="levels"):
            result.apply(ten_bit)

    def test_identity_when_image_already_uniform_full_range(self, gradient_image):
        """A full-range ramp image is already uniform: equalizing to the full
        range must be the identity up to one quantization step of the 64
        occupied levels (255/63 ~ 4 grayscale levels)."""
        result = equalize_histogram(gradient_image, 0, 255)
        transformed = result.apply(gradient_image)
        error = np.abs(transformed.pixels.astype(int)
                       - gradient_image.pixels.astype(int))
        assert error.max() <= 5


class TestObjective:
    def test_uniform_histogram_scores_zero(self):
        from repro.core.histogram import uniform_cumulative
        target = uniform_cumulative(256, 1000, 0, 200)
        assert equalization_objective(target, 0, 200) == pytest.approx(0.0)

    def test_point_mass_scores_high(self):
        spike = Histogram.of_image(Image.constant(255, shape=(10, 10)))
        value = equalization_objective(spike.cumulative(), 0, 200)
        assert value > 0.5
