"""Unit tests for the alternative equalization methods (clipped / BBHE)."""

import numpy as np
import pytest

from repro.core.equalization import equalize_histogram
from repro.core.equalization_variants import (
    available_equalizers,
    bi_histogram_equalization,
    clipped_equalization,
    get_equalizer,
)
from repro.core.histogram import Histogram


class TestRegistry:
    def test_available(self):
        assert set(available_equalizers()) == {"ghe", "clipped", "bbhe"}

    def test_lookup(self):
        assert get_equalizer("GHE") is equalize_histogram
        assert get_equalizer("clipped") is clipped_equalization
        assert get_equalizer("bbhe") is bi_histogram_equalization

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown equalization"):
            get_equalizer("adaptive-local")


class TestCommonInvariants:
    """All variants must satisfy the contract the pipeline relies on."""

    @pytest.mark.parametrize("name", ["ghe", "clipped", "bbhe"])
    def test_monotone_and_bounded(self, name, lena, pout, baboon):
        equalizer = get_equalizer(name)
        for image in (lena, pout, baboon):
            result = equalizer(image, 0, 150)
            outputs = np.asarray(result.transform.table) * 255
            assert np.all(np.diff(outputs) >= -1e-9), name
            assert outputs.min() >= -0.5
            assert outputs.max() <= 150.5

    @pytest.mark.parametrize("name", ["ghe", "clipped", "bbhe"])
    def test_transformed_image_within_range(self, name, lena):
        result = get_equalizer(name)(lena, 0, 120)
        transformed = result.apply(lena)
        assert transformed.max() <= 120

    @pytest.mark.parametrize("name", ["clipped", "bbhe"])
    def test_range_validation(self, name, lena):
        with pytest.raises(ValueError, match="g_min < g_max"):
            get_equalizer(name)(lena, 100, 100)

    @pytest.mark.parametrize("name", ["ghe", "clipped", "bbhe"])
    def test_accepts_bare_histogram(self, name, lena):
        histogram = Histogram.of_image(lena)
        result = get_equalizer(name)(histogram, 0, 200)
        assert result.source_histogram == histogram


class TestClippedEqualization:
    def test_clip_limit_one_is_linear_compression(self, lena):
        result = clipped_equalization(lena, 0, 200, clip_limit=1.0)
        outputs = np.asarray(result.transform.table) * 255
        # with every bin clipped to the mean the cumulative is a straight
        # line, so the transform is (nearly) affine
        slopes = np.diff(outputs)
        assert slopes.std() < 0.05

    def test_large_clip_limit_recovers_ghe(self, lena):
        plain = equalize_histogram(lena, 0, 200)
        relaxed = clipped_equalization(lena, 0, 200, clip_limit=1e6)
        assert np.allclose(np.asarray(plain.transform.table),
                           np.asarray(relaxed.transform.table), atol=1 / 255)

    def test_clipping_bounds_the_slope(self, pout):
        """The whole point of the clip limit: the transform of a peaky
        histogram cannot be steeper than clip_limit x the uniform slope."""
        clip_limit = 2.0
        result = clipped_equalization(pout, 0, 200, clip_limit=clip_limit)
        outputs = np.asarray(result.transform.table) * 255
        slopes = np.diff(outputs)
        uniform_slope = 200 / 255
        assert slopes.max() <= clip_limit * uniform_slope + 0.1

    def test_gentler_than_ghe_for_peaky_histograms(self, pout):
        from repro.quality.distortion import effective_distortion
        plain = equalize_histogram(pout, 0, 200).apply(pout)
        gentle = clipped_equalization(pout, 0, 200, clip_limit=2.0).apply(pout)
        assert effective_distortion(pout, gentle) <= \
            effective_distortion(pout, plain) + 1.0

    def test_validation(self, lena):
        with pytest.raises(ValueError, match="clip_limit"):
            clipped_equalization(lena, 0, 200, clip_limit=0.5)


class TestBiHistogramEqualization:
    def test_preserves_relative_mean_better_than_ghe(self, pout):
        """BBHE's selling point: the output mean stays near the input mean's
        relative position in the target range."""
        target_range = 200
        plain = equalize_histogram(pout, 0, target_range).apply(pout)
        preserved = bi_histogram_equalization(pout, 0, target_range).apply(pout)

        source_position = pout.mean() / 255.0
        plain_position = plain.mean() / target_range
        preserved_position = preserved.mean() / target_range
        assert abs(preserved_position - source_position) <= \
            abs(plain_position - source_position) + 0.02

    def test_dark_image_stays_dark(self, pout):
        result = bi_histogram_equalization(pout, 0, 200).apply(pout)
        assert result.mean() / 200 < 0.55

    def test_split_point_within_range(self, lena):
        result = bi_histogram_equalization(lena, 20, 220)
        outputs = np.asarray(result.transform.table) * 255
        assert outputs.min() >= 19.5
        assert outputs.max() <= 220.5
