"""Unit tests for the shared dimming-policy machinery."""

import numpy as np
import pytest

from repro.baselines.policy import (
    build_result,
    find_minimum_backlight,
    perceived_image,
)
from repro.core.transforms import GrayscaleSpreadTransform, IdentityTransform
from repro.display.panel import TransmissivityModel
from repro.display.power import DisplayPowerModel
from repro.quality.distortion import get_measure


class TestPerceivedImage:
    def test_identity_at_full_backlight_is_the_original(self, lena):
        perceived = perceived_image(lena, IdentityTransform(), 1.0)
        assert np.array_equal(perceived.pixels, lena.pixels)

    def test_dimming_without_compensation_darkens(self, lena):
        perceived = perceived_image(lena, IdentityTransform(), 0.5)
        assert perceived.mean() == pytest.approx(lena.mean() * 0.5, rel=0.02)

    def test_contrast_compensation_restores_dark_pixels(self, gradient_image):
        beta = 0.6
        perceived = perceived_image(gradient_image,
                                    GrayscaleSpreadTransform(beta), beta)
        dark_region = slice(None), slice(0, 20)     # columns well below beta*255
        original_dark = gradient_image.pixels[dark_region].astype(int)
        perceived_dark = perceived.pixels[dark_region].astype(int)
        assert np.abs(original_dark - perceived_dark).max() <= 2

    def test_bright_pixels_clip_at_beta(self, gradient_image):
        beta = 0.6
        perceived = perceived_image(gradient_image,
                                    GrayscaleSpreadTransform(beta), beta)
        assert perceived.max() <= int(np.ceil(beta * 255)) + 1

    def test_beta_validation(self, lena):
        with pytest.raises(ValueError, match="beta"):
            perceived_image(lena, IdentityTransform(), 0.0)

    def test_custom_transmissivity(self, lena):
        leaky = TransmissivityModel(t_off=0.1)
        perceived = perceived_image(lena, IdentityTransform(), 0.5,
                                    transmissivity=leaky)
        # leakage raises the black level, so the perceived image is brighter
        ideal = perceived_image(lena, IdentityTransform(), 0.5)
        assert perceived.mean() >= ideal.mean()


class TestFindMinimumBacklight:
    def test_monotone_function_bisection(self):
        # distortion = 100 * (1 - beta): budget 30 -> beta 0.7
        beta = find_minimum_backlight(lambda b: 100.0 * (1.0 - b), 30.0)
        assert beta == pytest.approx(0.7, abs=5e-3)

    def test_budget_always_met_returns_min_factor(self):
        assert find_minimum_backlight(lambda b: 0.0, 10.0, min_factor=0.2) == 0.2

    def test_budget_never_met_returns_full(self):
        assert find_minimum_backlight(lambda b: 99.0, 10.0) == 1.0

    def test_result_satisfies_budget(self):
        evaluate = lambda b: 50.0 * (1.0 - b) ** 0.5
        beta = find_minimum_backlight(evaluate, 20.0)
        assert evaluate(beta) <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            find_minimum_backlight(lambda b: 0.0, -1.0)
        with pytest.raises(ValueError, match="min_factor"):
            find_minimum_backlight(lambda b: 0.0, 1.0, min_factor=1.5)
        with pytest.raises(ValueError, match="coarse_steps"):
            find_minimum_backlight(lambda b: 0.0, 1.0, coarse_steps=1)


class TestBuildResult:
    def test_fields_and_power_accounting(self, lena):
        model = DisplayPowerModel()
        result = build_result("demo", lena, GrayscaleSpreadTransform(0.6), 0.6,
                              get_measure("effective"), 10.0, model)
        assert result.method == "demo"
        assert result.backlight_factor == 0.6
        assert result.max_distortion == 10.0
        assert result.power.ccfl < result.reference_power.ccfl
        assert 0.0 < result.power_saving < 1.0
        assert result.power_saving_percent == pytest.approx(
            100 * result.power_saving)

    def test_summary_keys(self, lena):
        result = build_result("demo", lena, IdentityTransform(), 1.0,
                              get_measure("rmse"), 5.0, DisplayPowerModel())
        assert set(result.summary()) == {"backlight_factor", "distortion_percent",
                                         "power_saving_percent"}
