"""Unit tests for the DLS baselines (ref. [4], Eq. 2a/2b)."""

import pytest

from repro.baselines.dls import DLSBrightness, DLSContrast
from repro.core.transforms import GrayscaleShiftTransform, GrayscaleSpreadTransform


class TestTransformSelection:
    def test_brightness_variant_uses_shift(self):
        assert isinstance(DLSBrightness().transform_for(0.7),
                          GrayscaleShiftTransform)

    def test_contrast_variant_uses_spread(self):
        assert isinstance(DLSContrast().transform_for(0.7),
                          GrayscaleSpreadTransform)

    def test_method_names(self):
        assert DLSBrightness().method_name == "dls-brightness"
        assert DLSContrast().method_name == "dls-contrast"


class TestDistortionBehaviour:
    def test_distortion_decreases_with_backlight(self, lena):
        policy = DLSContrast()
        assert policy.distortion_at(lena, 0.4) >= policy.distortion_at(lena, 0.8)

    def test_full_backlight_has_no_distortion(self, lena):
        assert DLSContrast().distortion_at(lena, 1.0) == pytest.approx(0.0, abs=1e-6)
        assert DLSBrightness().distortion_at(lena, 1.0) == pytest.approx(0.0, abs=1e-6)

    def test_native_saturation_measure_supported(self, lena):
        policy = DLSContrast(measure="saturation")
        assert policy.distortion_at(lena, 0.5) > 0.0


class TestOptimize:
    @pytest.mark.parametrize("policy_class", [DLSBrightness, DLSContrast])
    def test_budget_respected(self, policy_class, lena):
        result = policy_class().optimize(lena, 10.0)
        assert result.distortion <= 10.0 + 0.5
        assert result.max_distortion == 10.0

    @pytest.mark.parametrize("policy_class", [DLSBrightness, DLSContrast])
    def test_larger_budget_dims_more(self, policy_class, lena):
        tight = policy_class().optimize(lena, 5.0)
        loose = policy_class().optimize(lena, 20.0)
        assert loose.backlight_factor <= tight.backlight_factor + 1e-6
        assert loose.power_saving_percent >= tight.power_saving_percent - 1e-6

    def test_contrast_variant_beats_brightness_on_dark_images(self, pout):
        """Contrast enhancement exploits dark content better than a shift
        (the observation that motivated ref. [5])."""
        budget = 10.0
        brightness = DLSBrightness().optimize(pout, budget)
        contrast = DLSContrast().optimize(pout, budget)
        assert contrast.power_saving_percent >= brightness.power_saving_percent - 2.0

    def test_saving_is_positive_at_generous_budget(self, lena):
        result = DLSContrast().optimize(lena, 20.0)
        assert result.power_saving_percent > 10.0

    def test_apply_fixed_beta(self, lena):
        result = DLSContrast().apply(lena, 0.5)
        assert result.backlight_factor == 0.5
        assert result.displayed.max() == 255     # compensation saturates whites
