"""Unit tests for the CBCS baseline (ref. [5], Eq. 3)."""

import pytest

from repro.baselines.cbcs import CBCS
from repro.core.transforms import SingleBandSpreadTransform


class TestBandSelection:
    def test_full_backlight_keeps_full_band(self, lena):
        band = CBCS().band_for(lena, 1.0)
        assert (band.g_low, band.g_high) == (0.0, 1.0)

    def test_band_width_matches_beta(self, lena):
        for beta in (0.3, 0.5, 0.8):
            band = CBCS().band_for(lena, beta)
            assert band.g_high - band.g_low == pytest.approx(beta, abs=0.01)

    def test_band_is_single_band_transform(self, lena):
        assert isinstance(CBCS().band_for(lena, 0.5), SingleBandSpreadTransform)

    def test_band_covers_the_histogram_mode(self, pout):
        """For a dark image the best band hugs the dark end."""
        band = CBCS().band_for(pout, 0.5)
        assert band.g_low < 0.3

    def test_band_maximizes_covered_pixels(self, lena):
        """No other band of the same width covers more pixels."""
        import numpy as np
        from repro.core.histogram import Histogram
        beta = 0.4
        chosen = CBCS().band_for(lena, beta)
        counts = Histogram.of_image(lena).counts
        width = int(round(beta * 255))
        cumulative = np.concatenate([[0], np.cumsum(counts)])
        coverage = cumulative[width + 1:] - cumulative[:-width - 1]
        best_possible = coverage.max()
        chosen_start = int(round(chosen.g_low * 255))
        chosen_coverage = cumulative[chosen_start + width + 1] - cumulative[chosen_start]
        assert chosen_coverage == best_possible

    def test_beta_validation(self, lena):
        with pytest.raises(ValueError, match="beta"):
            CBCS().band_for(lena, 0.0)


class TestPolicy:
    def test_budget_respected(self, lena):
        result = CBCS().optimize(lena, 10.0)
        assert result.distortion <= 10.5
        assert result.method == "cbcs"

    def test_larger_budget_dims_more(self, lena):
        tight = CBCS().optimize(lena, 5.0)
        loose = CBCS().optimize(lena, 20.0)
        assert loose.backlight_factor <= tight.backlight_factor + 1e-6

    def test_distortion_decreases_with_backlight(self, lena):
        policy = CBCS()
        assert policy.distortion_at(lena, 0.3) >= policy.distortion_at(lena, 0.9)

    def test_native_contrast_fidelity_measure(self, lena):
        policy = CBCS(measure="contrast")
        result = policy.optimize(lena, 10.0)
        assert result.distortion <= 10.5

    def test_narrow_histogram_image_allows_aggressive_dimming(self, pout, baboon):
        """Ref. [5]'s key win: images whose histogram fits a narrow band can
        be dimmed hard.  The dark low-contrast image must allow at least as
        much dimming as the full-range texture."""
        budget = 10.0
        dark = CBCS().optimize(pout, budget)
        texture = CBCS().optimize(baboon, budget)
        assert dark.backlight_factor <= texture.backlight_factor + 0.05

    def test_apply_fixed_beta(self, lena):
        result = CBCS().apply(lena, 0.5)
        assert result.backlight_factor == 0.5
        assert result.displayed.min() == 0
        assert result.displayed.max() == 255
