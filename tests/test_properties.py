"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests exercise the algorithmic core on arbitrary (but valid) inputs:
histograms with any shape, images with any content, arbitrary monotone
curves, and arbitrary model parameters.  The invariants they pin down are the
ones the paper's correctness rests on:

* GHE always produces a monotone transformation bounded by ``[g_min, g_max]``.
* PLC keeps the endpoints, picks a subset of the breakpoints and never does
  worse with more segments.
* Every pixel transformation of the Fig. 2 family is monotone and bounded.
* The CCFL model is continuous and non-decreasing; power saving is in [0, 1).
* The effective distortion is zero for identical images and non-negative.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.equalization import equalization_transform, equalize_histogram
from repro.core.histogram import Histogram, uniform_cumulative
from repro.core.plc import PiecewiseLinearCurve, coarsen_curve
from repro.core.transforms import (
    GrayscaleShiftTransform,
    GrayscaleSpreadTransform,
    SingleBandSpreadTransform,
)
from repro.display.ccfl import CCFLModel
from repro.display.driver import HierarchicalDriver
from repro.imaging.image import Image
from repro.quality.distortion import effective_distortion
from repro.quality.uqi import universal_quality_index

# ----------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------- #
histogram_counts = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=8, max_value=256),
    elements=st.integers(min_value=0, max_value=1000),
).filter(lambda counts: counts.sum() > 0)

small_images = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(12, 24), st.integers(12, 24)),
    elements=st.integers(min_value=0, max_value=255),
).map(lambda pixels: Image(pixels))

betas = st.floats(min_value=0.05, max_value=1.0, allow_nan=False,
                  allow_infinity=False)

monotone_curves = st.lists(
    st.tuples(st.floats(0, 255, allow_nan=False),
              st.floats(0, 255, allow_nan=False)),
    min_size=4, max_size=40,
).map(lambda points: (
    np.unique(np.asarray([p[0] for p in points])),
    np.asarray([p[1] for p in points]),
)).filter(lambda xy: xy[0].size >= 4).map(lambda xy: PiecewiseLinearCurve(
    tuple(xy[0]),
    tuple(np.sort(xy[1])[: xy[0].size]),
))


# ----------------------------------------------------------------------- #
# GHE properties
# ----------------------------------------------------------------------- #
@given(counts=histogram_counts,
       limits=st.tuples(st.integers(0, 100), st.integers(101, 255)))
@settings(max_examples=60, deadline=None)
def test_ghe_transform_monotone_and_bounded(counts, limits):
    histogram = Histogram(counts)
    g_min_raw, g_max_raw = limits
    levels = histogram.levels
    g_min = min(g_min_raw, levels - 2)
    g_max = min(g_max_raw, levels - 1)
    assume(g_min < g_max)
    transform = equalization_transform(histogram, g_min, g_max)
    outputs = np.asarray(transform.table) * (levels - 1)
    assert np.all(np.diff(outputs) >= -1e-9)
    assert outputs.min() >= g_min - 0.5
    assert outputs.max() <= g_max + 0.5


@given(image=small_images, target_range=st.integers(16, 255))
@settings(max_examples=40, deadline=None)
def test_ghe_applied_image_respects_range(image, target_range):
    result = equalize_histogram(image, 0, target_range)
    transformed = result.apply(image)
    assert transformed.max() <= target_range
    assert transformed.min() >= 0


@given(counts=histogram_counts)
@settings(max_examples=40, deadline=None)
def test_uniform_target_is_a_valid_cumulative_histogram(counts):
    histogram = Histogram(counts)
    target = uniform_cumulative(histogram.levels, histogram.n_pixels,
                                0, histogram.levels - 1)
    values = target.values
    assert np.all(np.diff(values) >= -1e-9)
    assert values[-1] == histogram.n_pixels


# ----------------------------------------------------------------------- #
# PLC properties
# ----------------------------------------------------------------------- #
@given(curve=monotone_curves, n_segments=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_plc_keeps_endpoints_and_subsets_breakpoints(curve, n_segments):
    coarse = coarsen_curve(curve, n_segments)
    assert coarse.x[0] == curve.x[0]
    assert coarse.x[-1] == curve.x[-1]
    assert coarse.y[0] == curve.y[0]
    assert coarse.y[-1] == curve.y[-1]
    assert set(zip(coarse.x, coarse.y)) <= set(zip(curve.x, curve.y))
    assert coarse.n_segments <= max(n_segments, 1)
    assert coarse.mean_squared_error >= 0.0


@given(curve=monotone_curves)
@settings(max_examples=30, deadline=None)
def test_plc_error_non_increasing_in_segment_count(curve):
    errors = [coarsen_curve(curve, m).mean_squared_error for m in (1, 2, 4, 8)]
    for previous, current in zip(errors, errors[1:]):
        assert current <= previous + 1e-9


@given(curve=monotone_curves, n_segments=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_plc_of_monotone_curve_is_monotone(curve, n_segments):
    assert coarsen_curve(curve, n_segments).is_monotone()


# ----------------------------------------------------------------------- #
# pixel-transformation properties (Fig. 2 family)
# ----------------------------------------------------------------------- #
@given(beta=betas)
@settings(max_examples=50, deadline=None)
def test_fig2_transforms_monotone_and_bounded(beta):
    x = np.linspace(0.0, 1.0, 101)
    for transform in (GrayscaleShiftTransform(beta),
                      GrayscaleSpreadTransform(beta),
                      SingleBandSpreadTransform.from_backlight_factor(beta)):
        y = np.asarray(transform(x))
        assert np.all(np.diff(y) >= -1e-12)
        assert y.min() >= 0.0
        assert y.max() <= 1.0


@given(beta=betas, x=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_contrast_enhancement_preserves_luminance_below_beta(beta, x):
    """Eq. 2b compensation: beta * Phi(x) == x for x <= beta."""
    assume(x <= beta)
    transform = GrayscaleSpreadTransform(beta)
    assert beta * float(transform(x)) == np.clip(x, 0, beta) or \
        abs(beta * float(transform(x)) - x) < 1e-9


# ----------------------------------------------------------------------- #
# display-model properties
# ----------------------------------------------------------------------- #
@given(knee=st.floats(0.3, 0.95), lin=st.floats(0.5, 4.0),
       sat=st.floats(4.0, 10.0), intercept=st.floats(-0.5, 0.5))
@settings(max_examples=60, deadline=None)
def test_ccfl_model_continuous_and_monotone(knee, lin, sat, intercept):
    model = CCFLModel(saturation_knee=knee, linear_slope=lin,
                      linear_intercept=intercept, saturated_slope=sat,
                      min_factor=0.0)
    below = model.power(knee - 1e-9)
    above = model.power(knee + 1e-9)
    assert abs(below - above) < 1e-6
    betas = np.linspace(0.0, 1.0, 64)
    assert np.all(np.diff(model.power(betas)) >= -1e-9)


@given(beta=betas)
@settings(max_examples=50, deadline=None)
def test_ccfl_power_saving_in_unit_interval(beta):
    model = CCFLModel()
    saving = model.power_saving(beta)
    assert 0.0 <= saving < 1.0


@given(beta=betas,
       y_values=st.lists(st.floats(0, 255, allow_nan=False), min_size=2,
                         max_size=9))
@settings(max_examples=60, deadline=None)
def test_driver_program_voltages_bounded_and_monotone(beta, y_values):
    driver = HierarchicalDriver(n_sources=8)
    y = np.sort(np.asarray(y_values))
    x = np.linspace(0, 255, y.size)
    assume(np.all(np.diff(x) > 0))
    program = driver.program(x, y, beta)
    volts = program.reference_voltages
    assert np.all(np.diff(volts) >= -1e-9)
    assert volts.min() >= 0.0
    assert volts.max() <= driver.vdd + 1e-9
    lut = program.lut()
    assert np.all(np.diff(lut) >= -1e-9)


# ----------------------------------------------------------------------- #
# quality-measure properties
# ----------------------------------------------------------------------- #
@given(image=small_images)
@settings(max_examples=30, deadline=None)
def test_identity_is_distortion_free(image):
    assert effective_distortion(image, image, window=4) <= 1e-9
    assert universal_quality_index(image, image, window=4) == 1.0


@given(image=small_images, offset=st.integers(-80, 80))
@settings(max_examples=30, deadline=None)
def test_effective_distortion_nonnegative_and_finite(image, offset):
    shifted = image.with_pixels(np.clip(image.as_array().astype(int) + offset,
                                        0, 255))
    value = effective_distortion(image, shifted, window=4)
    assert np.isfinite(value)
    assert value >= 0.0
