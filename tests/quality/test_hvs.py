"""Unit tests for the human-visual-system weighting model."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.quality.hvs import HVSModel, perceptual_weight_map


class TestModelValidation:
    def test_default_model_valid(self):
        model = HVSModel()
        assert model.adaptation_strength > 0
        assert model.masking_strength > 0

    def test_negative_strengths_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            HVSModel(adaptation_strength=-0.1)
        with pytest.raises(ValueError, match="non-negative"):
            HVSModel(masking_strength=-1.0)

    def test_radius_validation(self):
        with pytest.raises(ValueError, match="neighborhood_radius"):
            HVSModel(neighborhood_radius=0)

    def test_floor_validation(self):
        with pytest.raises(ValueError, match="floor"):
            HVSModel(floor=0.0)
        with pytest.raises(ValueError, match="floor"):
            HVSModel(floor=1.5)


class TestBackgroundLuminance:
    def test_flat_image_background_is_constant(self, flat_image):
        background = HVSModel().background_luminance(flat_image)
        assert np.allclose(background, 128 / 255, atol=1e-6)

    def test_background_preserves_mean(self, lena):
        background = HVSModel().background_luminance(lena)
        assert background.mean() == pytest.approx(lena.as_float().mean(), abs=0.02)

    def test_background_is_smooth(self, noisy_image):
        background = HVSModel(neighborhood_radius=6).background_luminance(noisy_image)
        assert background.std() < noisy_image.as_float().std()


class TestLocalActivity:
    def test_flat_image_has_no_activity(self, flat_image):
        assert np.allclose(HVSModel().local_activity(flat_image), 0.0)

    def test_texture_has_more_activity_than_smooth(self, baboon, pout):
        model = HVSModel()
        assert model.local_activity(baboon).mean() > \
            model.local_activity(pout).mean()

    def test_activity_bounded(self, checker_image):
        activity = HVSModel().local_activity(checker_image)
        assert activity.min() >= 0.0
        assert activity.max() <= 1.0


class TestWeights:
    def test_shape_matches_image(self, lena):
        assert HVSModel().weights(lena).shape == lena.shape

    def test_weights_bounded_by_floor_and_one(self, lena):
        model = HVSModel(floor=0.3)
        weights = model.weights(lena)
        assert weights.min() >= 0.3
        assert weights.max() <= 1.0

    def test_maximum_weight_is_one(self, lena):
        assert HVSModel().weights(lena).max() == pytest.approx(1.0)

    def test_dark_regions_weighted_higher_than_bright(self):
        half = np.zeros((32, 32))
        half[:, 16:] = 230
        half[:, :16] = 20
        image = Image(half)
        weights = HVSModel(masking_strength=0.0).weights(image)
        assert weights[:, :12].mean() > weights[:, 20:].mean()

    def test_busy_regions_weighted_lower_than_flat(self, checker_image, flat_image):
        model = HVSModel(adaptation_strength=0.0)
        # embed the two structures side by side so weights are comparable
        combined = np.concatenate(
            [flat_image.pixels, checker_image.pixels], axis=1)
        weights = model.weights(Image(combined))
        flat_side = weights[:, :24].mean()
        busy_side = weights[:, 40:].mean()
        assert flat_side > busy_side

    def test_wrapper_matches_model(self, lena):
        model = HVSModel()
        assert np.array_equal(perceptual_weight_map(lena, model),
                              model.weights(lena))

    def test_rgb_input_accepted(self, rgb_image):
        weights = HVSModel().weights(rgb_image)
        assert weights.shape == (rgb_image.height, rgb_image.width)
