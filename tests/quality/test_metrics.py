"""Unit tests for the pixel/histogram distortion metrics."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.imaging.ops import adjust_brightness, clip_pixels
from repro.quality.metrics import (
    contrast_fidelity,
    histogram_l1_distance,
    mean_absolute_error,
    mse,
    psnr,
    rmse,
    saturation_percentage,
)


class TestMse:
    def test_zero_for_identical(self, gradient_image):
        assert mse(gradient_image, gradient_image) == 0.0
        assert rmse(gradient_image, gradient_image) == 0.0
        assert mean_absolute_error(gradient_image, gradient_image) == 0.0

    def test_known_value(self):
        black = Image.constant(0, shape=(4, 4))
        white = Image.constant(255, shape=(4, 4))
        assert mse(black, white) == pytest.approx(1.0)
        assert rmse(black, white) == pytest.approx(1.0)

    def test_rmse_is_sqrt_of_mse(self, gradient_image, noisy_image):
        shifted = adjust_brightness(gradient_image, 0.1)
        assert rmse(gradient_image, shifted) == pytest.approx(
            np.sqrt(mse(gradient_image, shifted)))

    def test_shape_mismatch_rejected(self, gradient_image, flat_image):
        with pytest.raises(ValueError, match="shapes differ"):
            mse(gradient_image, flat_image)

    def test_symmetry(self, gradient_image):
        shifted = adjust_brightness(gradient_image, 0.05)
        assert mse(gradient_image, shifted) == pytest.approx(
            mse(shifted, gradient_image))


class TestPsnr:
    def test_infinite_for_identical(self, flat_image):
        assert psnr(flat_image, flat_image) == float("inf")

    def test_higher_for_smaller_error(self, gradient_image):
        small = adjust_brightness(gradient_image, 0.02)
        large = adjust_brightness(gradient_image, 0.2)
        assert psnr(gradient_image, small) > psnr(gradient_image, large)

    def test_known_value_for_full_scale_error(self):
        black = Image.constant(0, shape=(4, 4))
        white = Image.constant(255, shape=(4, 4))
        assert psnr(black, white) == pytest.approx(0.0, abs=1e-9)


class TestSaturationPercentage:
    def test_zero_for_identity(self, gradient_image):
        assert saturation_percentage(gradient_image, gradient_image) == 0.0

    def test_counts_only_newly_saturated(self):
        original = Image(np.array([[0, 128], [255, 64]]))
        transformed = Image(np.array([[0, 255], [255, 255]]))
        # two of the four pixels were interior and are now at an extreme
        assert saturation_percentage(original, transformed) == pytest.approx(50.0)

    def test_brightness_shift_saturates_bright_pixels(self, gradient_image):
        shifted = adjust_brightness(gradient_image, 0.3)
        assert saturation_percentage(gradient_image, shifted) > 10.0

    def test_shape_mismatch(self, gradient_image, flat_image):
        with pytest.raises(ValueError, match="same shape"):
            saturation_percentage(gradient_image, flat_image)


class TestContrastFidelity:
    def test_perfect_for_identity(self, noisy_image):
        assert contrast_fidelity(noisy_image, noisy_image) == 1.0

    def test_perfect_for_pure_brightness_shift_without_saturation(self):
        image = Image(np.arange(100, 140).reshape(5, 8))
        shifted = Image(image.as_array() + 20)
        assert contrast_fidelity(image, shifted) == 1.0

    def test_degrades_when_band_clipped(self, gradient_image):
        clipped = clip_pixels(gradient_image, 100, 150)
        assert contrast_fidelity(gradient_image, clipped) < 0.8

    def test_tolerance_relaxes_the_measure(self, gradient_image):
        # mild requantization: small local contrast errors
        halved = Image((gradient_image.as_array() // 2) * 2)
        strict = contrast_fidelity(gradient_image, halved, tolerance=0)
        relaxed = contrast_fidelity(gradient_image, halved, tolerance=2)
        assert relaxed >= strict

    def test_flat_image_trivially_faithful(self, flat_image):
        assert contrast_fidelity(flat_image, flat_image) == 1.0


class TestHistogramDistance:
    def test_zero_for_identical(self, noisy_image):
        assert histogram_l1_distance(noisy_image, noisy_image) == 0.0

    def test_one_for_disjoint(self):
        black = Image.constant(0, shape=(4, 4))
        white = Image.constant(255, shape=(4, 4))
        assert histogram_l1_distance(black, white) == pytest.approx(1.0)

    def test_invariant_to_pixel_permutation(self, noisy_image):
        rng = np.random.default_rng(0)
        shuffled = noisy_image.with_pixels(
            rng.permutation(noisy_image.pixels.reshape(-1)).reshape(
                noisy_image.shape))
        assert histogram_l1_distance(noisy_image, shuffled) == 0.0

    def test_bit_depth_mismatch_rejected(self, flat_image):
        deep = Image.constant(128, shape=(32, 32), bit_depth=10)
        with pytest.raises(ValueError, match="bit depth"):
            histogram_l1_distance(flat_image, deep)

    def test_bounded_by_one(self, gradient_image, checker_image):
        resized = Image(np.tile(checker_image.pixels, (2, 2)))
        assert 0.0 <= histogram_l1_distance(gradient_image, resized) <= 1.0
