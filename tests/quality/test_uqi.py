"""Unit tests for the Universal image Quality Index."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.imaging.ops import adjust_brightness, adjust_contrast
from repro.quality.uqi import (
    universal_quality_index,
    uqi_components_map,
    uqi_map,
)


class TestGlobalIndex:
    def test_identical_images_score_one(self, lena):
        assert universal_quality_index(lena, lena) == pytest.approx(1.0)

    def test_bounded(self, lena, noisy_image):
        inverted = lena.with_pixels(255 - lena.as_array())
        value = universal_quality_index(lena, inverted)
        assert -1.0 <= value <= 1.0

    def test_inverted_image_scores_negative(self, lena):
        inverted = lena.with_pixels(255 - lena.as_array())
        assert universal_quality_index(lena, inverted) < 0.0

    def test_symmetric(self, lena):
        shifted = adjust_brightness(lena, 0.1)
        forward = universal_quality_index(lena, shifted)
        backward = universal_quality_index(shifted, lena)
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_brightness_shift_reduces_quality(self, lena):
        shifted = adjust_brightness(lena, 0.15)
        assert universal_quality_index(lena, shifted) < 1.0

    def test_contrast_loss_reduces_quality(self, lena):
        washed = adjust_contrast(lena, 0.3, pivot=0.5)
        assert universal_quality_index(lena, washed) < 0.95

    def test_larger_distortion_scores_lower(self, lena):
        mild = adjust_brightness(lena, 0.05)
        severe = adjust_brightness(lena, 0.3)
        assert universal_quality_index(lena, severe) < \
            universal_quality_index(lena, mild)

    def test_rgb_inputs_are_converted(self, rgb_image):
        assert universal_quality_index(rgb_image, rgb_image) == pytest.approx(1.0)


class TestMap:
    def test_map_shape(self, lena):
        quality = uqi_map(lena, lena, window=8)
        assert quality.shape == (lena.height - 7, lena.width - 7)

    def test_window_validation(self, lena, flat_image):
        with pytest.raises(ValueError, match="at least 2"):
            uqi_map(lena, lena, window=1)
        with pytest.raises(ValueError, match="larger than image"):
            uqi_map(flat_image, flat_image, window=64)

    def test_shape_mismatch(self, lena, flat_image):
        with pytest.raises(ValueError, match="shapes differ"):
            uqi_map(lena, flat_image)

    def test_flat_windows_score_one(self, flat_image):
        assert np.allclose(uqi_map(flat_image, flat_image), 1.0)

    def test_local_degradation_is_localized(self, gradient_image):
        damaged = gradient_image.as_array()
        damaged[:16, :16] = 128  # destroy one corner
        quality = uqi_map(gradient_image, gradient_image.with_pixels(damaged))
        assert quality[:4, :4].mean() < quality[-4:, -4:].mean()


class TestComponents:
    def test_identity_components_are_one(self, lena):
        correlation, luminance, contrast = uqi_components_map(lena, lena)
        assert np.allclose(correlation, 1.0)
        assert np.allclose(luminance, 1.0)
        assert np.allclose(contrast, 1.0)

    def test_product_matches_uqi_map_generically(self, lena):
        shifted = adjust_brightness(lena, 0.08)
        correlation, luminance, contrast = uqi_components_map(lena, shifted)
        product = correlation * luminance * contrast
        direct = uqi_map(lena, shifted)
        # identical up to the flat-window conventions, which affect few windows
        difference = np.abs(product - direct)
        assert np.median(difference) < 1e-9
        assert np.mean(difference < 1e-6) > 0.95

    def test_brightness_shift_hits_luminance_only(self):
        ramp = Image(np.tile(np.arange(40, 120), (64, 1)))
        shifted = Image(ramp.as_array() + 60)
        correlation, luminance, contrast = uqi_components_map(ramp, shifted)
        assert np.allclose(correlation, 1.0, atol=1e-6)
        assert np.allclose(contrast, 1.0, atol=1e-6)
        assert luminance.mean() < 0.99

    def test_contrast_scaling_hits_contrast_only(self):
        ramp = Image(np.tile(np.arange(100, 164), (64, 1)))
        # halve the spread around the mean without moving it
        values = (ramp.as_array().astype(float) - 132) * 0.5 + 132
        squeezed = Image(values)
        correlation, luminance, contrast = uqi_components_map(ramp, squeezed)
        # quantizing the squeezed ramp back to integer levels costs a little
        # correlation, but the contrast factor must take the dominant hit
        assert correlation.mean() > 0.93
        assert luminance.mean() > 0.99
        assert contrast.mean() < 0.9

    def test_structure_destroyed_by_flattening(self, gradient_image):
        flat = Image.constant(128, shape=gradient_image.shape)
        correlation, _, contrast = uqi_components_map(gradient_image, flat)
        assert np.allclose(correlation, 0.0)
        assert np.allclose(contrast, 0.0)

    def test_components_are_bounded(self, lena, baboon):
        correlation, luminance, contrast = uqi_components_map(lena, baboon)
        assert correlation.min() >= -1.0 and correlation.max() <= 1.0
        assert luminance.min() >= 0.0 and luminance.max() <= 1.0 + 1e-12
        assert contrast.min() >= 0.0 and contrast.max() <= 1.0 + 1e-12
