"""Unit tests for the effective-distortion measure and the measure registry."""

import numpy as np
import pytest

from repro.core.equalization import equalize_histogram
from repro.imaging.image import Image
from repro.imaging.ops import adjust_brightness, adjust_contrast, clip_pixels
from repro.quality import distortion as distortion_module
from repro.quality.distortion import (
    available_measures,
    effective_distortion,
    get_measure,
    register_measure,
)


class TestEffectiveDistortion:
    def test_zero_for_identical(self, lena):
        assert effective_distortion(lena, lena) == pytest.approx(0.0, abs=1e-9)

    def test_nonnegative(self, lena, pout):
        assert effective_distortion(lena, pout) >= 0.0

    def test_monotone_in_range_compression(self, lena):
        """Compressing to a smaller dynamic range must not look better."""
        values = []
        for target_range in (220, 150, 80, 40):
            transformed = equalize_histogram(lena, 0, target_range).apply(lena)
            values.append(effective_distortion(lena, transformed))
        assert values == sorted(values)

    def test_magnitudes_match_paper_regime(self, lena):
        """A mild compression is a few percent, a harsh one tens of percent."""
        mild = equalize_histogram(lena, 0, 220).apply(lena)
        harsh = equalize_histogram(lena, 0, 50).apply(lena)
        assert effective_distortion(lena, mild) < 15.0
        assert effective_distortion(lena, harsh) > 25.0

    def test_contrast_enhancement_is_cheap(self, pout):
        """Pure enhancement (what equalization does to a dull image) is benign."""
        enhanced = adjust_contrast(pout, 1.5, pivot=0.5)
        clipped = clip_pixels(pout, 80, 120)
        assert effective_distortion(pout, enhanced) < \
            effective_distortion(pout, clipped)

    def test_clipping_is_expensive(self, lena):
        """Flat-band clipping destroys structure and must register strongly."""
        clipped = clip_pixels(lena, 110, 150)
        assert effective_distortion(lena, clipped) > 10.0

    def test_brightness_shift_partially_adapted(self, lena):
        shifted = adjust_brightness(lena, 0.1)
        value = effective_distortion(lena, shifted)
        assert 0.0 < value < 20.0

    def test_exponent_validation(self, lena, pout):
        with pytest.raises(ValueError, match="luminance_exponent"):
            effective_distortion(lena, pout, luminance_exponent=1.5)
        with pytest.raises(ValueError, match="contrast_loss_exponent"):
            effective_distortion(lena, pout, contrast_loss_exponent=-0.1)

    def test_zero_exponents_ignore_global_remapping(self, lena):
        shifted = adjust_brightness(lena, 0.2)
        adapted = effective_distortion(lena, shifted, luminance_exponent=0.0,
                                       contrast_loss_exponent=0.0)
        charged = effective_distortion(lena, shifted, luminance_exponent=1.0,
                                       contrast_loss_exponent=1.0)
        assert adapted < charged


class TestMeasureRegistry:
    def test_available_measures(self):
        names = available_measures()
        for expected in ("effective", "uqi", "ssim", "rmse", "saturation",
                         "contrast", "histogram"):
            assert expected in names

    def test_get_measure_case_insensitive(self):
        assert get_measure("EFFECTIVE") is effective_distortion

    def test_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown distortion measure"):
            get_measure("nope")

    def test_every_measure_is_zero_for_identity(self, lena):
        for name in available_measures():
            assert get_measure(name)(lena, lena) == pytest.approx(0.0, abs=1e-6), name

    def test_every_measure_is_positive_for_severe_brightening(self, lena):
        # a strong brightness shift saturates many pixels at white, so every
        # registered measure (including the saturation count) must fire
        shifted = adjust_brightness(lena, 0.3)
        for name in available_measures():
            assert get_measure(name)(lena, shifted) > 0.0, name

    def test_register_and_reject_duplicates(self, lena):
        def trivial(original: Image, transformed: Image) -> float:
            return 42.0

        register_measure("trivial-test-measure", trivial)
        try:
            assert get_measure("trivial-test-measure")(lena, lena) == 42.0
            with pytest.raises(ValueError, match="already registered"):
                register_measure("trivial-test-measure", trivial)
        finally:
            distortion_module._MEASURES.pop("trivial-test-measure", None)


class TestMeasureRelationships:
    def test_saturation_measure_blind_to_compression(self, lena):
        """The ref. [4] measure under-reports compression distortion.

        This is the paper's motivation for a better measure: histogram
        compression that collapses interior levels produces no saturated
        pixels, so the saturation measure reports ~0 even though the image
        lost detail.
        """
        compressed = equalize_histogram(lena, 0, 80).apply(lena)
        saturation = get_measure("saturation")(lena, compressed)
        effective = get_measure("effective")(lena, compressed)
        assert saturation < 5.0
        assert effective > saturation

    def test_rmse_and_effective_disagree_on_enhancement(self, pout):
        """RMSE punishes benign contrast enhancement much more than HVS."""
        enhanced = adjust_contrast(pout, 1.6, pivot=0.5)
        assert get_measure("rmse")(pout, enhanced) > \
            get_measure("effective")(pout, enhanced)
