"""Unit tests for the SSIM measure."""

import numpy as np
import pytest

from repro.imaging.image import Image
from repro.imaging.ops import adjust_brightness, adjust_contrast
from repro.quality.ssim import ssim, ssim_map
from repro.quality.uqi import universal_quality_index


class TestSsim:
    def test_identical_images_score_one(self, lena):
        assert ssim(lena, lena) == pytest.approx(1.0)

    def test_bounded(self, lena):
        inverted = lena.with_pixels(255 - lena.as_array())
        assert -1.0 <= ssim(lena, inverted) <= 1.0

    def test_symmetric(self, lena):
        shifted = adjust_brightness(lena, 0.1)
        assert ssim(lena, shifted) == pytest.approx(ssim(shifted, lena), abs=1e-9)

    def test_monotone_in_degradation(self, lena):
        mild = adjust_brightness(lena, 0.05)
        severe = adjust_brightness(lena, 0.3)
        assert ssim(lena, severe) < ssim(lena, mild)

    def test_contrast_loss_detected(self, lena):
        washed = adjust_contrast(lena, 0.3, pivot=0.5)
        assert ssim(lena, washed) < 0.98

    def test_stabilized_on_flat_images(self, flat_image):
        # UQI's flat-window handling needs special cases; SSIM's constants
        # make it well defined directly.
        other = Image.constant(129, shape=flat_image.shape)
        value = ssim(flat_image, other)
        assert 0.9 < value <= 1.0

    def test_close_to_uqi_for_textured_images(self, baboon):
        shifted = adjust_brightness(baboon, 0.05)
        assert ssim(baboon, shifted) == pytest.approx(
            universal_quality_index(baboon, shifted), abs=0.05)


class TestSsimMap:
    def test_map_shape(self, lena):
        assert ssim_map(lena, lena, window=8).shape == (lena.height - 7,
                                                        lena.width - 7)

    def test_shape_mismatch(self, lena, flat_image):
        with pytest.raises(ValueError, match="shapes differ"):
            ssim_map(lena, flat_image)

    def test_window_validation(self, lena):
        with pytest.raises(ValueError, match="at least 2"):
            ssim_map(lena, lena, window=1)

    def test_map_bounded(self, lena, pout):
        values = ssim_map(lena, pout)
        assert values.max() <= 1.0 + 1e-9
        assert values.min() >= -1.0 - 1e-9
