"""Benchmark: Figure 3 — the k-window grayscale spreading function.

Fig. 3 shows the piecewise-linear transfer function HEBS programs into the
hierarchical reference driver: several linear regions with different slopes
(possibly with flat bands), approximating the exact GHE transformation.  The
benchmark regenerates it for the Lena stand-in and checks the k-band
structure and the approximation quality.
"""

import numpy as np
import pytest

from repro.bench.experiments import figure3_kband_function


@pytest.mark.paper_experiment("fig3")
def test_figure3_kband_function(benchmark):
    series = benchmark.pedantic(
        figure3_kband_function,
        kwargs={"image_name": "lena", "target_range": 128, "n_segments": 4},
        rounds=1, iterations=1,
    )
    print()
    print("breakpoints (x -> y):")
    for x, y in zip(series["breakpoints_x"], series["breakpoints_y"]):
        print(f"  {x:6.1f} -> {y:6.1f}")
    print(f"segment slopes: {np.round(series['slopes'], 3)}")
    print(f"PLC mean squared error: {series['plc_mse'][0]:.3f} levels^2")

    # k-band structure: at most 4 segments, more than one distinct slope
    assert 2 <= series["breakpoints_x"].shape[0] <= 5
    assert len(np.unique(np.round(series["slopes"], 3))) >= 2

    # the coarse curve tracks the exact GHE transformation closely
    error = np.abs(series["exact"] - series["coarse"])
    assert error.mean() < 8.0          # grayscale levels
    assert series["plc_mse"][0] < 100.0

    # both curves are monotone and bounded by the target range
    assert np.all(np.diff(series["exact"]) >= -1e-9)
    assert np.all(np.diff(series["coarse"]) >= -1e-9)
    assert series["exact"].max() <= 128.5
    assert series["coarse"].max() <= 128.5
