"""Benchmarks: ablations of HEBS design choices (DESIGN.md ids abl-m, abl-dist).

Two design decisions the paper motivates but does not sweep:

* **PLC segment count** (Sec. 4.1): few segments keep the reference-driver
  hardware small, many segments track the exact GHE transformation better.
* **Distortion measure** (Sec. 6 future work): what happens to the selected
  dynamic range / power saving when the characteristic curve is built on a
  different quality metric.
"""

import pytest

from repro.bench.experiments import (
    ablation_distortion_measures,
    ablation_plc_segments,
)


@pytest.mark.paper_experiment("abl-m")
def test_ablation_plc_segments(benchmark):
    table = benchmark.pedantic(
        ablation_plc_segments,
        kwargs={"image_name": "lena", "target_range": 128,
                "segment_counts": (2, 3, 4, 6, 8, 12, 16)},
        rounds=1, iterations=1,
    )
    print()
    print(table.render())

    errors = [row["plc_mse"] for row in table.rows]
    savings = [row["power_saving%"] for row in table.rows]
    distortions = [row["distortion%"] for row in table.rows]

    # approximation error shrinks monotonically with the segment budget
    assert errors == sorted(errors, reverse=True)
    # 8 segments (the paper's hardware) already track the GHE transform well
    eight_segment_row = next(row for row in table.rows if row["segments"] == 8)
    assert eight_segment_row["plc_mse"] < errors[0] / 4 + 1e-9
    # the power saving is set by the target range, not by the segment count
    assert max(savings) - min(savings) < 3.0
    # distortion does not explode at low segment counts (clipping is bounded)
    assert max(distortions) < 40.0


@pytest.mark.paper_experiment("abl-dist")
def test_ablation_distortion_measures(benchmark):
    table = benchmark.pedantic(
        ablation_distortion_measures,
        kwargs={"measures": ("effective", "uqi", "ssim", "rmse"),
                "max_distortion": 10.0,
                "image_names": ("lena", "peppers", "baboon", "pout")},
        rounds=1, iterations=1,
    )
    print()
    print(table.render())

    rows = {row["measure"]: row for row in table.rows}
    assert set(rows) == {"effective", "uqi", "ssim", "rmse"}

    for row in table.rows:
        assert 1 <= row["selected_range"] <= 255
        assert 0.0 <= row["mean_backlight"] <= 1.0
        assert row["mean_saving%"] >= 0.0

    # the HVS-aware effective measure permits at least as much compression
    # (and therefore saving) as the raw UQI at the same nominal budget -
    # the paper's core argument for a better distortion definition
    assert rows["effective"]["selected_range"] <= rows["uqi"]["selected_range"]
    assert rows["effective"]["mean_saving%"] >= rows["uqi"]["mean_saving%"] - 1e-6
