"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md §4
for the experiment index) and prints the reproduced rows/series next to the
published values, so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
report generator.  The heavyweight artifacts — the synthetic benchmark suite
and the fitted distortion characteristic curve — are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import benchmark_images, default_curve, default_pipeline


def pytest_configure(config):
    # The benchmarks are also collected by a plain `pytest benchmarks/` run;
    # they are marked so users can deselect them explicitly if needed.
    config.addinivalue_line("markers",
                            "paper_experiment(id): maps a benchmark to a "
                            "table/figure of the paper")


@pytest.fixture(scope="session")
def suite():
    """All 19 synthetic benchmark images."""
    return benchmark_images()


@pytest.fixture(scope="session")
def curve():
    """The session-cached distortion characteristic curve (Fig. 7 artifact)."""
    return default_curve()


@pytest.fixture(scope="session")
def pipeline(curve):
    """The default HEBS pipeline used by every experiment."""
    return default_pipeline()
