"""Benchmark: Figure 6a/6b — CCFL and panel power characterization.

Fig. 6a plots CCFL illuminance versus driver power and the paper fits the
two-piece linear model of Eq. (11) with
``Cs=0.8234, Alin=1.96, Clin=-0.2372, Asat=6.944, |Csat|=4.324``.
Fig. 6b plots panel power versus transmittance and fits the quadratic of
Eq. (12) with ``a=0.02449, b=0.04984, c=0.993``.

The benchmarks simulate the measurements, re-run the fits and check that the
published coefficients are recovered.
"""

import pytest

from repro.bench.experiments import (
    figure6a_ccfl_characterization,
    figure6b_panel_characterization,
)


@pytest.mark.paper_experiment("fig6a")
def test_figure6a_ccfl_characterization(benchmark):
    result = benchmark.pedantic(figure6a_ccfl_characterization,
                                rounds=3, iterations=1)
    fitted, paper = result["fitted"], result["paper"]
    print()
    print(f"{'coefficient':12s} {'fitted':>10s} {'paper':>10s}")
    for key in ("Cs", "Alin", "Clin", "Asat", "Csat"):
        print(f"{key:12s} {fitted[key]:10.4f} {paper[key]:10.4f}")

    # the knee and both slopes are recovered from the simulated measurement
    assert fitted["Cs"] == pytest.approx(paper["Cs"], abs=0.05)
    assert fitted["Alin"] == pytest.approx(paper["Alin"], rel=0.15)
    assert fitted["Asat"] == pytest.approx(paper["Asat"], rel=0.15)
    assert fitted["Clin"] == pytest.approx(paper["Clin"], abs=0.1)
    assert fitted["Csat"] == pytest.approx(paper["Csat"], abs=0.5)

    # the shape of Fig. 6a: power rises monotonically and the saturated
    # region is much steeper than the linear one
    assert fitted["Asat"] > 2.0 * fitted["Alin"]


@pytest.mark.paper_experiment("fig6b")
def test_figure6b_panel_characterization(benchmark):
    result = benchmark.pedantic(figure6b_panel_characterization,
                                rounds=3, iterations=1)
    fitted, paper = result["fitted"], result["paper"]
    print()
    print(f"{'coefficient':12s} {'fitted':>10s} {'paper':>10s}")
    for key in ("a", "b", "c"):
        print(f"{key:12s} {fitted[key]:10.5f} {paper[key]:10.5f}")

    assert fitted["c"] == pytest.approx(paper["c"], abs=0.01)
    assert fitted["a"] == pytest.approx(paper["a"], abs=0.02)
    assert fitted["b"] == pytest.approx(paper["b"], abs=0.02)

    # the shape of Fig. 6b: the curve is nearly flat (the panel-power change
    # is negligible next to the CCFL) and decreases with transmittance for
    # the normally-white panel
    power = result["power"]
    assert power.max() - power.min() < 0.06
    assert power[0] > power[-1]
