"""Benchmarks: extension studies (abl-eq and the interface study).

Two experiments beyond the paper's evaluation section, both tied to text in
the paper:

* ``abl-eq`` — Sec. 6 names "alternative ... histograms equalization
  methods" as future work; the ablation compares plain GHE against clipped
  (contrast-limited) equalization and bi-histogram equalization at a fixed
  dynamic range.
* ``interface`` — Sec. 1's "first class of techniques" reduces the switching
  activity of the video interface; the study shows bus encoding and
  backlight scaling compose (HEBS barely changes the bus energy, the
  encodings save the same fraction either way).
"""

import pytest

from repro.bench.experiments import (
    ablation_equalization_methods,
    interface_encoding_study,
)


@pytest.mark.paper_experiment("abl-eq")
def test_ablation_equalization_methods(benchmark):
    table = benchmark.pedantic(ablation_equalization_methods,
                               rounds=1, iterations=1)
    print()
    print(table.render())

    rows = {row["method"]: row for row in table.rows}
    assert set(rows) == {"ghe", "clipped", "bbhe"}

    # GHE produces the flattest histogram (that is its objective)
    assert rows["ghe"]["mean_objective"] <= rows["clipped"]["mean_objective"] + 1e-9
    assert rows["ghe"]["mean_objective"] <= rows["bbhe"]["mean_objective"] + 1e-9

    # BBHE preserves mean brightness best
    assert rows["bbhe"]["mean_brightness_shift"] <= \
        rows["ghe"]["mean_brightness_shift"] + 0.02

    # all three stay in a sane distortion regime at this range
    for row in table.rows:
        assert row["mean_distortion%"] < 30.0


@pytest.mark.paper_experiment("interface")
def test_interface_encoding_study(benchmark, pipeline):
    table = benchmark.pedantic(interface_encoding_study,
                               kwargs={"pipeline": pipeline},
                               rounds=1, iterations=1)
    print()
    print(table.render())

    originals = [row for row in table.rows if row["variant"] == "original"]
    transformed = [row for row in table.rows if row["variant"] == "hebs"]
    assert len(originals) == len(transformed) == 4

    for original, hebs in zip(originals, transformed):
        # backlight scaling reduces display power ...
        assert hebs["display_power"] < original["display_power"]
        # ... while the frame costs about the same to transmit
        assert hebs["binary"] == pytest.approx(original["binary"], rel=0.5)
        # the bus energy is a second-order term next to the display power
        assert original["binary"] < 0.2 * original["display_power"]

    # bus-invert never costs more transitions than plain binary
    for row in table.rows:
        assert row["bus-invert"] <= row["binary"] + 1e-12
