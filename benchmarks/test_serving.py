"""Benchmark: the micro-batching coalescer versus N independent processes.

The serving claim of :mod:`repro.serve`: N concurrent clients requesting
compensation for duplicate-heavy content must cost one solve per distinct
histogram per tick, not N solves.  The benchmark times the serial baseline
(N independent :meth:`~repro.api.engine.Engine.process` calls with no cache
and no coalescing — the pre-serving calling convention) against the same
workload submitted concurrently to a :class:`~repro.serve.Server`, asserts
the coalesced path is at least 2x faster with bitwise-identical outputs,
and emits the measured throughput / p99 latency as ``BENCH_serving.json``
so CI accumulates a perf trajectory (override the location with the
``BENCH_SERVING_JSON`` environment variable).

``hebs-adaptive`` is used for the timed run: its per-image bisection makes
the solve strongly dominate the LUT apply, which is the regime the serving
layer exists for (and where a regression in the coalescer is most visible).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.bench.throughput import repeated_workload
from repro.serve import Server, time_serial_baseline

#: Duplicate-heavy workload shape: 4 distinct histograms, 8 repeats each.
WORKLOAD_REPEATS = 8
BUDGET = 10.0


@pytest.mark.paper_experiment("serving")
def test_coalescer_beats_serial_process_calls(pipeline):
    workload = repeated_workload(repeats=WORKLOAD_REPEATS)

    # serial baseline: N independent process calls, nothing shared
    serial_engine = Engine(HEBSAlgorithm(pipeline, adaptive=True),
                           cache_size=0)
    serial_seconds, serial = time_serial_baseline(serial_engine, workload,
                                                  BUDGET)

    # served path: concurrent submits, micro-batched, cache-accelerated
    server = Server(engine=Engine(HEBSAlgorithm(pipeline, adaptive=True)),
                    workers=4, max_batch=32, max_delay=0.005)
    with server:
        start = time.perf_counter()
        futures = [server.submit(image, BUDGET) for image in workload]
        served = [future.result(timeout=120.0) for future in futures]
        served_seconds = time.perf_counter() - start
        stats = server.stats()

    speedup = serial_seconds / served_seconds
    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    payload = {
        "benchmark": "serving",
        "workload": {
            "requests": len(workload),
            "distinct_histograms": len(workload) // WORKLOAD_REPEATS,
            "budget_percent": BUDGET,
            "algorithm": "hebs-adaptive",
        },
        "serial_seconds": round(serial_seconds, 6),
        "served_seconds": round(served_seconds, 6),
        "speedup": round(speedup, 3),
        "throughput_rps": round(len(workload) / served_seconds, 3),
        "latency_p50_ms": round(1e3 * stats.latency_p50, 3),
        "latency_p99_ms": round(1e3 * stats.latency_p99, 3),
        "mean_batch_size": round(stats.mean_batch_size, 3),
        "cache_hit_rate": round(stats.cache.hit_rate, 4),
        "cache_reuse_rate": round(stats.cache.reuse_rate, 4),
    }
    destination = Path(os.environ.get("BENCH_SERVING_JSON",
                                      "BENCH_serving.json"))
    destination.write_text(json.dumps(payload, indent=2) + "\n")

    # bitwise-identical outputs, request by request
    for expected, actual in zip(serial, served):
        assert np.array_equal(expected.output.pixels, actual.output.pixels)
        assert actual.backlight_factor == expected.backlight_factor
        assert actual.distortion == expected.distortion

    assert speedup >= 2.0, (
        f"coalesced serving must be at least 2x the serial baseline, "
        f"got {speedup:.2f}x ({serial_seconds:.3f}s vs {served_seconds:.3f}s)")

    # every request was answered and the duplicates actually coalesced
    assert stats.completed == len(workload)
    assert stats.failed == 0
    assert stats.mean_batch_size > 1.0
    assert stats.cache.reuse_rate > 0.5


@pytest.mark.paper_experiment("serving")
def test_served_results_match_engine_for_default_hebs(pipeline, suite):
    """Concurrency-free correctness guard on the default algorithm: the
    served result for every suite image equals the direct engine result."""
    images = list(suite.values())[:6]
    reference_engine = Engine(HEBSAlgorithm(pipeline))
    expected = [reference_engine.process(image, BUDGET) for image in images]

    with Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=2) as server:
        served = server.process_many(images, BUDGET)

    for want, got in zip(expected, served):
        assert np.array_equal(want.output.pixels, got.output.pixels)
        assert got.backlight_factor == want.backlight_factor
        assert got.distortion == want.distortion
