"""Benchmark: the emissive (OLED) workload as a first-class citizen.

Three claims of PR 9's ``repro.display.oled`` subsystem, measured:

1. **Power reduction under the budget** — on the full 19-image synthetic
   corpus at the reference budget, ``oled-darken`` must save at least
   ``MEAN_SAVING_FLOOR`` percent of display power on average (and
   ``MIN_SAVING_FLOOR`` on every image), while the *measured* distortion
   stays within the budget on **every** image — the darkener's safety
   margin is what makes the histogram-only solve honest on textured
   content, and this gate is what pins it.
2. **Serving-stack parity** — the darkened output must be bit-identical
   across the in-process engine, a real NetworkServer over protocol v1
   (base64 arrays) and v2 (zero-copy binary frames), and a 2-shard
   ClusterRouter: the whole serving stack serves the emissive display
   class unchanged.
3. **Zero cross-class cache leakage** — a mixed CCFL/OLED workload through
   the cluster must take exactly one cluster-wide cache miss per distinct
   ``(frame, algorithm)`` pair and none on a re-drive: instance-led cache
   keys keep the display classes from ever sharing a solution.

Measurements are emitted as ``BENCH_oled.json`` (override the location
with the ``BENCH_OLED_JSON`` environment variable) alongside the serving,
sessions, network, and cluster artifacts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.client import Client, RemoteServerAdapter
from repro.cluster import ClusterRouter
from repro.serve import NetworkServer, Server
from repro.serve.loadgen import run_load

BUDGET = 10.0
#: Pinned floors for the corpus-wide emissive power reduction at BUDGET
#: (measured ~44% mean / ~31% min for ghe, ~43% / ~30% for clipped).
MEAN_SAVING_FLOOR = 35.0
MIN_SAVING_FLOOR = 20.0

#: Mixed-workload shape: every distinct frame drives BOTH display classes.
MIXED_FRAMES = 8
MIXED_ALGORITHMS = ("hebs", "oled-darken")


def _merge_bench(section: dict) -> None:
    """Merge ``section`` into BENCH_oled.json, preserving the other
    benchmark's keys whichever test runs (or fails) first."""
    destination = Path(os.environ.get("BENCH_OLED_JSON", "BENCH_oled.json"))
    payload = {}
    if destination.exists():
        try:
            payload = json.loads(destination.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload.update(section)
    destination.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.paper_experiment("oled")
def test_oled_power_reduction_within_budget_on_every_image(suite):
    sections = {}
    for name in ("oled-darken", "oled-darken-clipped"):
        engine = Engine(name)
        start = time.perf_counter()
        results = {image_name: engine.process(image, BUDGET)
                   for image_name, image in suite.items()}
        elapsed = time.perf_counter() - start
        savings = [result.power_saving_percent
                   for result in results.values()]
        distortions = [result.distortion for result in results.values()]
        sections[name] = {
            "images": len(results),
            "budget_percent": BUDGET,
            "mean_saving_percent": round(float(np.mean(savings)), 3),
            "min_saving_percent": round(float(np.min(savings)), 3),
            "max_distortion_percent": round(float(np.max(distortions)), 3),
            "images_over_budget": int(sum(d > BUDGET for d in distortions)),
            "elapsed_seconds": round(elapsed, 6),
            "per_image": {
                image_name: {
                    "saving_percent": round(result.power_saving_percent, 3),
                    "distortion_percent": round(result.distortion, 3),
                    "target_range": result.details.target_range,
                }
                for image_name, result in results.items()
            },
        }

    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    _merge_bench({"benchmark": "oled", "power": sections})

    print()
    for name, section in sections.items():
        print(f"{name}: mean saving {section['mean_saving_percent']}%, "
              f"min {section['min_saving_percent']}%, worst distortion "
              f"{section['max_distortion_percent']}% (budget {BUDGET}%)")

    for name, section in sections.items():
        assert section["images_over_budget"] == 0, (
            f"{name}: distortion exceeded the budget on "
            f"{section['images_over_budget']} images")
        assert section["mean_saving_percent"] >= MEAN_SAVING_FLOOR
        assert section["min_saving_percent"] >= MIN_SAVING_FLOOR


@pytest.mark.paper_experiment("oled")
def test_oled_outputs_bit_identical_across_the_serving_stack(suite):
    frames = [suite[name] for name in ("lena", "baboon", "pout", "testpat")]
    reference = Engine("oled-darken")
    expected = [reference.process(frame, BUDGET) for frame in frames]

    lanes = {}

    def record(lane: str, results) -> None:
        identical = all(
            np.array_equal(got.output.pixels, want.output.pixels)
            and got == want
            for got, want in zip(results, expected))
        lanes[lane] = {"frames": len(frames), "bit_identical": identical}

    server = Server(engine=Engine(), workers=2, max_delay=0.002)
    network = NetworkServer(server)
    host, port = network.start()
    try:
        for version in (1, 2):
            with Client(host=host, port=port, timeout=60.0,
                        max_version=version) as client:
                record(f"network_v{version}",
                       [client.process(frame, BUDGET,
                                       algorithm="oled-darken")
                        for frame in frames])
    finally:
        network.close()

    shards = []
    for _ in range(2):
        shard = NetworkServer(Server(engine=Engine(), workers=2,
                                     max_delay=0.002))
        shard.start()
        shards.append(shard)
    router = ClusterRouter([f"{h}:{p}"
                            for h, p in (s.address for s in shards)],
                           health_interval=30.0, request_timeout=60.0)
    router.start()
    try:
        rhost, rport = router.address
        with Client(host=rhost, port=rport, timeout=60.0) as client:
            record("cluster_router",
                   [client.process(frame, BUDGET, algorithm="oled-darken")
                    for frame in frames])
    finally:
        router.close()
        for shard in shards:
            shard.close()

    _merge_bench({"parity": lanes})
    print()
    for lane, section in lanes.items():
        print(f"{lane}: bit_identical={section['bit_identical']}")
    for lane, section in lanes.items():
        assert section["bit_identical"], f"{lane} diverged from in-process"


@pytest.mark.paper_experiment("oled")
def test_mixed_cluster_has_zero_cross_class_cache_leakage():
    # every frame appears twice in a row, and the algorithm list cycles
    # with period 2, so each distinct frame drives BOTH display classes
    rng = np.random.default_rng(20050307)
    from repro.imaging.image import Image
    frames = [Image(rng.integers(0, 256, (32, 32), dtype=np.uint8),
                    name=f"mixed-{index:02d}")
              for index in range(MIXED_FRAMES)]
    workload = [frame for frame in frames for _ in MIXED_ALGORITHMS]
    distinct_pairs = len(frames) * len(MIXED_ALGORITHMS)

    shards = []
    for _ in range(2):
        shard = NetworkServer(Server(engine=Engine(), workers=2,
                                     max_delay=0.002))
        shard.start()
        shards.append(shard)
    router = ClusterRouter([f"{h}:{p}"
                            for h, p in (s.address for s in shards)],
                           health_interval=30.0, request_timeout=60.0)
    router.start()
    try:
        host, port = router.address
        with RemoteServerAdapter(f"{host}:{port}", timeout=60.0) as remote:
            first = run_load(remote, workload, BUDGET, clients=4,
                             algorithm=list(MIXED_ALGORITHMS))
            second = run_load(remote, workload, BUDGET, clients=4,
                              algorithm=list(MIXED_ALGORITHMS))
        with Client(host=host, port=port, timeout=60.0) as client:
            stats = client.stats_dict()
    finally:
        router.close()
        for shard in shards:
            shard.close()

    assert first.errors == 0 and second.errors == 0
    # sanity: the interleave really exercised both display classes
    classes = {result.algorithm for result in first.results.values()}
    assert classes == set(MIXED_ALGORITHMS)

    misses = int(stats["cache_misses"])
    hits = int(stats["cache_hits"])
    section = {
        "frames": len(frames),
        "algorithms": list(MIXED_ALGORITHMS),
        "requests": 2 * len(workload),
        "distinct_pairs": distinct_pairs,
        "cluster_misses": misses,
        "cluster_hits": hits,
        "routed_shards": len(stats["cluster"]["routed"]),
    }
    _merge_bench({"mixed_cluster": section})
    print(f"\nmixed cluster: {section['requests']} requests, "
          f"{misses} misses for {distinct_pairs} distinct "
          f"(frame, algorithm) pairs, {hits} hits")

    # zero cross-class leakage: one miss per (frame, algorithm) pair
    # cluster-wide, and the re-drive took none at all
    assert misses == distinct_pairs
    assert hits == 2 * len(workload) - distinct_pairs
