"""Benchmark: Figure 8 — sample images at fixed dynamic ranges 220 and 100.

Fig. 8 shows six benchmark images transformed to dynamic ranges 220 and 100
and annotates each with its distortion and power saving.  Paper regime:

    dynamic range 220: distortion 0.9 - 3.1%, power saving 25 - 30%
    dynamic range 100: distortion 5.1 - 10.2%, power saving 43 - 61%

The reproduction checks the same qualitative picture on the synthetic
stand-ins: mild distortion and ~quarter savings at R=220, markedly higher
savings (at higher distortion) at R=100.
"""

import numpy as np
import pytest

from repro.bench.experiments import figure8_sample_transforms


@pytest.mark.paper_experiment("fig8")
def test_figure8_sample_transforms(benchmark, pipeline):
    table = benchmark.pedantic(figure8_sample_transforms,
                               kwargs={"pipeline": pipeline},
                               rounds=1, iterations=1)
    print()
    print(table.render())
    print("paper regime: R=220 -> ~1-3% distortion, 25-30% saving; "
          "R=100 -> ~5-10% distortion, 43-61% saving")

    rows_220 = [row for row in table.rows if row["dynamic_range"] == 220]
    rows_100 = [row for row in table.rows if row["dynamic_range"] == 100]
    assert len(rows_220) == len(rows_100) == 6

    # R = 220: mild distortion, ~quarter of the display power saved
    for row in rows_220:
        assert row["distortion%"] < 15.0, row
        assert 20.0 < row["power_saving%"] < 35.0, row
        assert row["backlight_factor"] == pytest.approx(220 / 255, abs=0.01)

    # R = 100: much larger savings at visibly higher distortion
    for row in rows_100:
        assert 45.0 < row["power_saving%"] < 65.0, row
        assert row["backlight_factor"] == pytest.approx(100 / 255, abs=0.01)

    # the trade-off moves the right way for every image
    mean_dist_220 = np.mean([row["distortion%"] for row in rows_220])
    mean_dist_100 = np.mean([row["distortion%"] for row in rows_100])
    assert mean_dist_100 > mean_dist_220
    mean_save_220 = np.mean([row["power_saving%"] for row in rows_220])
    mean_save_100 = np.mean([row["power_saving%"] for row in rows_100])
    assert mean_save_100 > mean_save_220 + 15.0
