"""Benchmark: cache-affinity sharded serving through the cluster router.

Three claims of the ``repro.cluster`` layer, measured on one box:

1. **Shard scaling** — on a duplicate-heavy corpus, 4 shards behind the
   router must deliver at least 3x the throughput of 1 shard.  Two
   sources of noise are controlled so the scale points measure the
   routing layer itself:

   * the algorithm is *paced* (a fixed sleep inside ``apply_solution``,
     the hook the engine runs on every request, cache hit or not), so
     each shard models a capacity-bound server whose work is a blocking
     wait — waits overlap across shards even though every shard lives
     in this one test process, and the pause is sized to dominate the
     fixed per-request wire/codec cost (~3-5ms) that does not shrink
     with shard count;
   * the corpus is *key-balanced*: distinct frames are rejection-
     sampled until the hash ring assigns an equal share to every shard.
     Consistent hashing with a handful of keys is binomially lumpy (the
     busiest of 4 shards can easily own 10 of 24 keys, capping any
     4-shard run near 2.4x no matter how good the router is); balancing
     the corpus removes hash variance from the capacity question, while
     the ring's statistical properties are pinned separately in
     ``tests/cluster/test_ring.py``.
2. **Affinity** — routing by the quantized histogram signature (the
   engine's own cache key) must send every duplicate to the shard that
   already solved it: after a warm pass, the hammered cluster takes
   **zero** further cache misses, and the distinct keys miss exactly
   once cluster-wide at every scale.
3. **Consistent-hash failover** — killing one of 4 shards must remap
   only that shard's keys (expected 1/N of the key space): re-driving
   the corpus re-misses exactly the dead shard's keys on the survivors,
   and the remap fraction stays within the consistent-hash bound.

Outputs through the router are checked **bit-identical** against a
direct shard connection and the in-process engine.  Measurements are
emitted as ``BENCH_cluster.json`` (override with the
``BENCH_CLUSTER_JSON`` environment variable) alongside the serving,
sessions, and network artifacts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import CompensationAlgorithm, HEBSAlgorithm
from repro.client import Client, RemoteServerAdapter
from repro.cluster import ClusterRouter
from repro.core.histogram import Histogram
from repro.imaging.image import Image
from repro.serve import NetworkServer, Server, protocol
from repro.serve.loadgen import run_load

BUDGET = 10.0
DISTINCT = 24          # distinct frames in the corpus
REPEATS = 4            # duplicates per frame: the cache-affinity payoff
#: Per-request pacing inside ``apply_solution``.  The fixed per-request
#: wire/codec CPU cost is ~3-5ms and does not shrink with shard count;
#: for a 4-shard run to show its real capacity the paced service time
#: must dwarf it (speedup -> 1 / (1/4 + 2*overhead/pause)).
PAUSE_SECONDS = 0.24
SHARD_WORKERS = 2      # concurrent paced applies per shard
CLIENTS = 24           # concurrent load threads at every scale point
SCALE_SHARDS = 4       # the scaled point of the 4-vs-1 gate


class _PacedAlgorithm(CompensationAlgorithm):
    """HEBS with a fixed sleep in ``apply_solution``.

    The engine runs ``apply_solution`` on every request — cache hits
    included — so the sleep turns each shard into a capacity-bound
    server (~``SHARD_WORKERS / PAUSE_SECONDS`` rps) whose "work" is a
    blocking wait that overlaps across shards even on a 1-core machine.
    Solutions and outputs are untouched HEBS; histogram-only ``solve``
    requests stay fast (the engine applies nothing for them), which the
    warm passes below exploit.
    """

    name = "hebs-paced"
    description = "HEBS with fixed per-request pacing (benchmark only)"

    def __init__(self, pipeline) -> None:
        self._inner = HEBSAlgorithm(pipeline)

    def solve(self, image, max_distortion):
        return self._inner.solve(image, max_distortion)

    def apply_solution(self, solution, image, max_distortion=None):
        time.sleep(PAUSE_SECONDS)
        return self._inner.apply_solution(solution, image,
                                          max_distortion=max_distortion)


def start_cluster(pipeline, count: int, *, paced: bool):
    """``count`` shards (fresh engines, fresh caches) behind a fresh
    router."""
    algorithm = _PacedAlgorithm if paced else HEBSAlgorithm
    shards = []
    for _ in range(count):
        server = Server(engine=Engine(algorithm(pipeline)),
                        workers=SHARD_WORKERS, max_batch=8,
                        max_delay=0.001)
        network = NetworkServer(server)
        network.start()
        shards.append(network)
    addresses = [f"{host}:{port}"
                 for host, port in (shard.address for shard in shards)]
    router = ClusterRouter(addresses, health_interval=30.0,
                           request_timeout=120.0)
    router.start()
    return shards, router


def balanced_corpus(router: ClusterRouter) -> list[Image]:
    """``DISTINCT`` random frames whose routing keys spread *evenly*
    over ``router``'s ring — an equal per-shard share, found by
    rejection sampling (see the module docstring for why)."""
    rng = np.random.default_rng(20050307)    # the paper's DATE'05 date
    per_shard = DISTINCT // len(router.shards)
    buckets: dict[str, list[Image]] = {address: []
                                       for address in router.shards}
    accepted = 0
    while accepted < DISTINCT:
        pixels = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        frame = Image(pixels, name=f"frame-{accepted:02d}")
        owner = router.ring.node_for(protocol.routing_key(frame))
        if len(buckets[owner]) < per_shard:
            buckets[owner].append(frame)
            accepted += 1
    # interleave shards so round-robin load dealing stays balanced too
    return [bucket[index] for index in range(per_shard)
            for bucket in buckets.values()]


def drive_scale_point(router: ClusterRouter, frames: list[Image],
                      count: int) -> dict:
    """Warm the cluster by histogram-only ``solve`` (unpaced, but hits
    the same engine cache under the same routing key), then hammer with
    paced full-image ``process`` requests."""
    workload = [frame for _ in range(REPEATS) for frame in frames]
    host, port = router.address
    with Client(host=host, port=port, timeout=120.0) as warm:
        for frame in frames:
            warm.solve(Histogram.of_image(frame), BUDGET)
        warmed = warm.stats_dict()
    with RemoteServerAdapter(f"{host}:{port}", timeout=120.0) as remote:
        report = run_load(remote, workload, BUDGET, clients=CLIENTS)
    with Client(host=host, port=port, timeout=120.0) as after:
        hammered = after.stats_dict()
    assert report.errors == 0
    return {
        "shards": count,
        "requests": len(workload),
        "elapsed_seconds": round(report.elapsed_seconds, 6),
        "throughput_rps": round(len(workload) / report.elapsed_seconds, 3),
        "latency_p50_ms": round(1e3 * report.latency_p50, 3),
        "misses_after_warm": int(warmed["cache_misses"]),
        "misses_after_hammer": int(hammered["cache_misses"]),
        "routed_shards": len(hammered["cluster"]["routed"]),
    }


@pytest.mark.paper_experiment("cluster")
def test_cluster_scaling_affinity_failover_and_parity(pipeline):
    # ---------------------------------------------------------------- #
    # scaling: the balanced corpus is sampled against the 4-shard ring,
    # then the same frames drive the 4-shard and 1-shard points
    # ---------------------------------------------------------------- #
    shards, router = start_cluster(pipeline, SCALE_SHARDS, paced=True)
    try:
        frames = balanced_corpus(router)
        scaled_point = drive_scale_point(router, frames, SCALE_SHARDS)
    finally:
        router.close()
        for shard in shards:
            shard.close()

    shards, router = start_cluster(pipeline, 1, paced=True)
    try:
        single_point = drive_scale_point(router, frames, 1)
    finally:
        router.close()
        for shard in shards:
            shard.close()

    speedup = (scaled_point["throughput_rps"]
               / single_point["throughput_rps"])
    scale_points = [single_point, scaled_point]

    # ---------------------------------------------------------------- #
    # parity: router vs direct shard vs in-process engine, bit-identical
    # (unpaced shards: parity is about routing, not capacity)
    # ---------------------------------------------------------------- #
    shards, router = start_cluster(pipeline, 2, paced=False)
    try:
        host, port = router.address
        direct_host, direct_port = shards[0].address
        engine = Engine(HEBSAlgorithm(pipeline))
        with Client(host=host, port=port, timeout=120.0) as routed, \
                Client(host=direct_host, port=direct_port,
                       timeout=120.0) as direct:
            for frame in frames[:6]:
                through_router = routed.process(frame, BUDGET)
                through_shard = direct.process(frame, BUDGET)
                reference = engine.process(frame, BUDGET)
                assert np.array_equal(through_router.output.pixels,
                                      through_shard.output.pixels)
                assert np.array_equal(through_router.output.pixels,
                                      reference.output.pixels)
                assert through_router.backlight_factor == \
                    reference.backlight_factor
                routed_solution = routed.solve(Histogram.of_image(frame),
                                               BUDGET)
                direct_solution = direct.solve(Histogram.of_image(frame),
                                               BUDGET)
                assert routed_solution.transform == \
                    direct_solution.transform
    finally:
        router.close()
        for shard in shards:
            shard.close()

    # ---------------------------------------------------------------- #
    # failover: kill 1 of 4 shards, re-drive, count remapped keys on a
    # FRESH ring (new ports, new arcs — no balance assumed or needed)
    # ---------------------------------------------------------------- #
    shards, router = start_cluster(pipeline, 4, paced=False)
    try:
        host, port = router.address
        with Client(host=host, port=port, timeout=120.0) as client:
            for frame in frames:
                client.solve(Histogram.of_image(frame), BUDGET)
            before = client.stats_dict()

            owners = {frame.name: router.ring.node_for(
                protocol.routing_key(frame)) for frame in frames}
            victim = max(set(owners.values()),
                         key=list(owners.values()).count)
            victim_index = router.shards.index(victim)
            expected_remapped = sum(owner == victim
                                    for owner in owners.values())
            survivors = [address for address in router.shards
                         if address != victim]
            survivor_misses_before = sum(
                int(before["shards"][address]["cache_misses"])
                for address in survivors)

            shards[victim_index].close()
            for frame in frames:
                client.solve(Histogram.of_image(frame), BUDGET)
            after = client.stats_dict()
            survivor_misses_after = sum(
                int(after["shards"][address]["cache_misses"])
                for address in survivors)

        remapped = survivor_misses_after - survivor_misses_before
        remap_fraction = expected_remapped / DISTINCT
    finally:
        router.close()
        for shard in shards:
            shard.close()

    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    payload = {
        "benchmark": "cluster",
        "workload": {
            "distinct_frames": DISTINCT,
            "repeats": REPEATS,
            "requests": DISTINCT * REPEATS,
            "budget_percent": BUDGET,
            "algorithm": "hebs (paced: "
                         f"{1e3 * PAUSE_SECONDS:.0f}ms/request, "
                         f"{SHARD_WORKERS} workers/shard)",
            "clients": CLIENTS,
            "key_balanced_for_shards": SCALE_SHARDS,
        },
        "scale_points": scale_points,
        "speedup_4_shards_vs_1": round(speedup, 3),
        "failover": {
            "shards": 4,
            "victim_owned_keys": expected_remapped,
            "remapped_keys_observed": remapped,
            "remap_fraction": round(remap_fraction, 4),
            "consistent_hash_expected_fraction": 0.25,
        },
    }
    destination = Path(os.environ.get("BENCH_CLUSTER_JSON",
                                      "BENCH_cluster.json"))
    destination.write_text(json.dumps(payload, indent=2) + "\n")

    # gate 1 — shard scaling through the router
    assert speedup >= 3.0, (
        f"4 shards must be at least 3x 1 shard on the duplicate-heavy "
        f"corpus, got {speedup:.2f}x "
        f"({single_point['throughput_rps']:.1f} -> "
        f"{scaled_point['throughput_rps']:.1f} rps)")

    # gate 2 — affinity: the warm pass misses once per distinct key
    # cluster-wide, and the hammer adds zero misses at every scale
    for point in scale_points:
        assert point["misses_after_warm"] == DISTINCT, point
        assert point["misses_after_hammer"] == DISTINCT, (
            f"duplicates leaked to cold shards at "
            f"{point['shards']} shards: {point}")
    assert scaled_point["routed_shards"] == SCALE_SHARDS

    # gate 3 — failover within the consistent-hash bound: exactly the
    # dead shard's keys re-missed, and only ~1/N of the key space moved
    assert remapped == expected_remapped, (
        f"expected exactly the victim's {expected_remapped} keys to "
        f"remap, observed {remapped}")
    assert remap_fraction <= 0.5, (
        f"remap fraction {remap_fraction:.2f} breaks the consistent-"
        f"hash bound (expected ~0.25 for 4 shards)")
