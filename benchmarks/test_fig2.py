"""Benchmark: Figure 2 — the pixel transformation function family.

Fig. 2 is illustrative (identity, grayscale shift, grayscale spreading and
single-band spreading at a common backlight factor); the benchmark
regenerates the four curves and checks their defining properties.
"""

import numpy as np
import pytest

from repro.bench.experiments import figure2_transform_functions


@pytest.mark.paper_experiment("fig2")
def test_figure2_transform_functions(benchmark):
    series = benchmark.pedantic(figure2_transform_functions,
                                kwargs={"beta": 0.6}, rounds=3, iterations=1)
    x = series["x"]
    beta = float(series["beta"][0])
    print()
    print(f"beta = {beta}")
    for name in ("identity", "grayscale_shift", "grayscale_spreading",
                 "single_band_spreading"):
        y = series[name]
        print(f"  {name:24s} y(0)={y[0]:.2f}  y(0.5)={y[len(y)//2]:.2f} "
              f" y(1)={y[-1]:.2f}")

    # Fig. 2a: identity
    assert np.allclose(series["identity"], x)
    # Fig. 2b: shift raises blacks by 1-beta and saturates whites
    assert series["grayscale_shift"][0] == pytest.approx(1 - beta)
    assert series["grayscale_shift"][-1] == 1.0
    # Fig. 2c: spreading has slope 1/beta then saturates
    mid = np.searchsorted(x, beta / 2)
    assert series["grayscale_spreading"][mid] == pytest.approx(0.5, abs=0.01)
    assert series["grayscale_spreading"][-1] == 1.0
    # Fig. 2d: single band is flat / linear / flat
    band = series["single_band_spreading"]
    assert band[0] == 0.0 and band[-1] == 1.0
    slopes = np.diff(band) / np.diff(x)
    assert slopes.max() > 1.2      # the band is spread (slope > 1)
    # all four are monotone
    for name in ("identity", "grayscale_shift", "grayscale_spreading",
                 "single_band_spreading"):
        assert np.all(np.diff(series[name]) >= -1e-12), name
