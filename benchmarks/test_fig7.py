"""Benchmark: Figure 7 — distortion versus dynamic range with two global fits.

Fig. 7 plots, for every benchmark image and ten target dynamic ranges
(50..250), the measured distortion of the range-compressed image, together
with an "entire dataset" fit and a "worst-case" fit.  In the paper the
distortion spans roughly 0..35% over that range and decreases monotonically
as the target range grows.

The benchmark rebuilds the characterization on the synthetic suite and checks
those shapes, plus the property the HEBS flow depends on: inverting the curve
yields a dynamic range whose predicted distortion meets the budget.
"""

import numpy as np
import pytest

from repro.bench.experiments import figure7_distortion_curve


@pytest.mark.paper_experiment("fig7")
def test_figure7_distortion_curve(benchmark, suite):
    series = benchmark.pedantic(figure7_distortion_curve, rounds=1, iterations=1)
    curve = series["curve"]

    print()
    print("dynamic range -> distortion (dataset fit / worst-case fit):")
    for target in (50, 100, 150, 200, 250):
        print(f"  {target:3d} -> {float(curve.predict(target)):6.2f}% / "
              f"{float(curve.predict(target, worst_case=True)):6.2f}%")
    for budget in (5.0, 10.0, 20.0):
        selected = curve.min_range_for_distortion(budget, worst_case=False)
        print(f"  budget {budget:5.1f}% -> minimum admissible range {selected}")

    # one sample per image per target range
    assert series["sample_ranges"].shape[0] == len(suite) * 10

    # distortion decreases monotonically with the target dynamic range
    dataset_fit = series["dataset_fit"]
    assert np.all(np.diff(dataset_fit) <= 1e-6)

    # magnitudes: single digits at the top of the range, tens of percent at
    # the bottom (the paper's Fig. 7 spans ~0..35%)
    assert float(curve.predict(245)) < 10.0
    assert 25.0 < float(curve.predict(50)) < 70.0

    # the worst-case fit upper-bounds both the dataset fit and every sample
    assert np.all(series["worstcase_fit"] >= dataset_fit - 1e-9)
    ranges, distortions = curve.sample_arrays()
    assert np.all(np.asarray(curve.predict(ranges, worst_case=True))
                  >= distortions - 1e-6)

    # inversion consistency: the selected range meets the budget it was
    # selected for (dataset fit)
    for budget in (5.0, 10.0, 20.0, 40.0):
        selected = curve.min_range_for_distortion(budget, worst_case=False)
        if selected < curve.levels - 1:
            assert float(curve.predict(selected)) <= budget + 1e-6
