"""Benchmark: HEBS versus the prior techniques (the paper's "+15%" claim).

Sec. 1 and Sec. 5.2 claim HEBS delivers roughly 15 percentage points more
display-power saving than the best previously reported technique (DLS [4] /
CBCS [5]) at a matched distortion level.  The original papers quoted numbers
measured under their own (laxer) distortion metrics; here every method is
constrained by the *same* effective-distortion budget, which is the harder,
apples-to-apples version of the comparison.

Expected shape: HEBS >= CBCS >= DLS variants, with a clear gap between HEBS
and the weaker DLS policy.
"""

import pytest

from repro.bench.experiments import comparison_vs_baselines


@pytest.mark.paper_experiment("cmp15")
def test_comparison_vs_baselines(benchmark, suite, pipeline):
    table = benchmark.pedantic(
        comparison_vs_baselines,
        kwargs={"max_distortion": 10.0, "images": suite, "pipeline": pipeline},
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    print("paper claim: ~15 pp advantage over the best of refs. [4]/[5] "
          "(measured under their own metrics)")

    savings = {row["method"]: row["mean_saving%"] for row in table.rows}
    distortions = {row["method"]: row["mean_distortion%"] for row in table.rows}

    # every method respects the common 10% budget on average
    for method, value in distortions.items():
        assert value <= 10.5, (method, value)

    # HEBS wins against every baseline
    assert savings["hebs"] >= savings["cbcs"]
    assert savings["hebs"] >= savings["dls-contrast"]
    assert savings["hebs"] >= savings["dls-brightness"]

    # and the gap to the weaker prior technique is double digits, the gap to
    # the best baseline is clearly positive
    assert savings["hebs"] - savings["dls-brightness"] > 5.0
    best_baseline = max(savings["cbcs"], savings["dls-contrast"],
                        savings["dls-brightness"])
    assert savings["hebs"] - best_baseline >= 1.0

    # HEBS operates at a visibly lower backlight level
    factors = {row["method"]: row["mean_backlight"] for row in table.rows}
    assert factors["hebs"] <= min(factors["dls-brightness"],
                                  factors["dls-contrast"]) + 0.02
