"""Benchmark: Table 1 — power saving per image at 5% / 10% / 20% distortion.

Paper values (19 USC-SIPI images, average row):

    ==============  =======  ========  ========
    distortion       5%       10%       20%
    --------------  -------  --------  --------
    average saving  45.88%   56.16%    64.38%
    ==============  =======  ========  ========

The reproduction runs the same sweep on the synthetic benchmark suite with
per-image adaptive range selection and checks the qualitative shape: savings
grow with the distortion budget, every image saves power at 20%, and the
averages land in the paper's regime.
"""

import pytest

from repro.bench.experiments import table1_power_saving

#: Average power saving the paper reports per distortion level.
PAPER_AVERAGES = {5.0: 45.88, 10.0: 56.16, 20.0: 64.38}


@pytest.mark.paper_experiment("table1")
def test_table1_power_saving(benchmark, suite, pipeline):
    table = benchmark.pedantic(
        table1_power_saving,
        kwargs={"images": suite, "pipeline": pipeline},
        rounds=1, iterations=1,
    )
    print()
    print(table.render())
    print(f"paper averages: {PAPER_AVERAGES}")

    average = table.rows[-1]
    assert average["image"] == "Average"

    # shape: saving grows with the allowed distortion
    assert average["saving@5%"] < average["saving@10%"] < average["saving@20%"]

    # magnitude: same regime as the paper (within ~15 percentage points)
    for level, paper_value in PAPER_AVERAGES.items():
        measured = average[f"saving@{level:g}%"]
        assert abs(measured - paper_value) < 16.0, (level, measured, paper_value)

    # every image saves a meaningful amount of power at the 20% budget
    for row in table.rows[:-1]:
        assert row["saving@20%"] > 30.0, row["image"]

    # and the per-image spread exists (the reason Table 1 is per-image)
    savings_at_10 = [row["saving@10%"] for row in table.rows[:-1]]
    assert max(savings_at_10) - min(savings_at_10) > 3.0
