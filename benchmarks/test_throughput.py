"""Benchmark: engine batch+cache throughput versus the naive per-image loop.

The unified :mod:`repro.api` engine exploits the paper's Fig. 4 observation —
the transformation depends only on the histogram and the budget — to solve
each distinct histogram once and replay the solution as a LUT application.
On a repeated-histogram workload (a slideshow loop, a still video scene) the
batched, cache-accelerated path must beat the naive loop that re-derives the
transformation per image, while producing identical output.
"""

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.bench.throughput import repeated_workload, throughput_benchmark


@pytest.mark.paper_experiment("throughput")
def test_throughput_batch_cache_beats_naive_loop(benchmark, pipeline):
    workload = repeated_workload(repeats=6)
    budget = 10.0

    naive = [pipeline.process(image, budget) for image in workload]

    engine = Engine(HEBSAlgorithm(pipeline))
    engine.process_batch(workload, budget)          # warm the cache
    warm = benchmark.pedantic(
        engine.process_batch, args=(workload, budget),
        rounds=3, iterations=1,
    )

    # identical output, image by image
    for expected, actual in zip(naive, warm):
        assert np.array_equal(expected.transformed.pixels,
                              actual.output.pixels)
        assert expected.backlight_factor == actual.backlight_factor
        assert expected.distortion == actual.distortion

    # the warm batch answered every group from the cache
    stats = engine.cache_stats
    assert stats.hits > 0
    assert stats.hit_rate > 0.5


@pytest.mark.paper_experiment("throughput")
def test_throughput_table_reports_speedup():
    table = throughput_benchmark(repeats=6)
    print()
    print(table.render())

    rows = {row["path"]: row for row in table.rows}
    naive = rows["naive per-image loop"]
    warm = rows["engine batch (warm cache)"]
    # the headline claim: batch + warm cache beats the per-image loop
    assert warm["seconds"] < naive["seconds"]
    assert warm["speedup"] > 1.0
