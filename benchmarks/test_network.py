"""Benchmark: histogram-only solve RPCs versus full-image process RPCs.

The bandwidth argument of the remote serving API, measured: a client that
ships a 256-bin histogram and applies the returned LUT locally
(``Client.compensate`` — the paper's Fig. 4 decomposition across a socket)
must beat the same client shipping whole images both ways
(``Client.process``) by at least 2x on the same duplicate-heavy corpus,
with **bit-identical** outputs.  The solve path moves O(histogram) bytes
and replays a cached solution; the process path moves O(pixels) each way
and pays the server-side apply plus distortion/power accounting.

Measured throughput and latency are emitted as ``BENCH_network.json``
(override the location with the ``BENCH_NETWORK_JSON`` environment
variable) so CI accumulates a perf trajectory next to
``BENCH_serving.json`` and ``BENCH_sessions.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.bench.throughput import repeated_workload
from repro.client import Client
from repro.serve import NetworkServer, Server

#: Duplicate-heavy workload shape: 4 distinct histograms, 8 repeats each.
WORKLOAD_REPEATS = 8
BUDGET = 10.0

#: Feed-lane benchmark shape: one scene repeated (replay path), so codec
#: cost — not solver work — dominates the measured latency.
FEED_FRAMES = 150
FEED_ROUNDS = 2


def _merge_bench(section: dict) -> None:
    """Merge ``section`` into BENCH_network.json, preserving the other
    benchmark's keys whichever test runs (or fails) first."""
    destination = Path(os.environ.get("BENCH_NETWORK_JSON",
                                      "BENCH_network.json"))
    payload = {}
    if destination.exists():
        try:
            payload = json.loads(destination.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload.update(section)
    destination.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.paper_experiment("network")
def test_solve_rpc_at_least_2x_process_rpc(pipeline):
    workload = repeated_workload(repeats=WORKLOAD_REPEATS)

    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=4,
                    max_batch=32, max_delay=0.002)
    network = NetworkServer(server)
    host, port = network.start()
    try:
        server.warmup(workload, budgets=(BUDGET,))
        with Client(host=host, port=port, timeout=120.0) as client:
            # one warm round trip per path: connection setup, first-touch
            # codec/JIT costs must not bias either side
            client.process(workload[0], BUDGET)
            client.compensate(workload[0], BUDGET)

            start = time.perf_counter()
            processed = [client.process(image, BUDGET)
                         for image in workload]
            process_seconds = time.perf_counter() - start

            start = time.perf_counter()
            compensated = [client.compensate(image, BUDGET)
                           for image in workload]
            solve_seconds = time.perf_counter() - start
    finally:
        network.close()

    speedup = process_seconds / solve_seconds
    solve_rps = len(workload) / solve_seconds
    process_rps = len(workload) / process_seconds

    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    payload = {
        "benchmark": "network",
        "workload": {
            "requests": len(workload),
            "distinct_histograms": len(workload) // WORKLOAD_REPEATS,
            "budget_percent": BUDGET,
            "algorithm": "hebs",
        },
        "process_rpc_seconds": round(process_seconds, 6),
        "solve_rpc_seconds": round(solve_seconds, 6),
        "speedup_solve_vs_process": round(speedup, 3),
        "solve_rpc_throughput_rps": round(solve_rps, 3),
        "process_rpc_throughput_rps": round(process_rps, 3),
        "solve_rpc_mean_latency_ms": round(
            1e3 * solve_seconds / len(workload), 3),
        "process_rpc_mean_latency_ms": round(
            1e3 * process_seconds / len(workload), 3),
    }
    _merge_bench(payload)

    # the histogram-only path must reproduce the full-image path bitwise:
    # same output pixels, same programmed backlight, request by request
    for local, remote in zip(compensated, processed):
        assert np.array_equal(local.output.pixels, remote.output.pixels)
        assert local.backlight_factor == remote.backlight_factor

    assert speedup >= 2.0, (
        f"solve RPCs must be at least 2x full-image process RPCs, got "
        f"{speedup:.2f}x ({process_seconds:.3f}s vs {solve_seconds:.3f}s)")


@pytest.mark.paper_experiment("network")
def test_protocol_v2_shrinks_the_wire_without_costing_latency(pipeline,
                                                              suite):
    """The protocol v2 acceptance gates, measured per lane on one server:

    * ``process`` and ``feed`` bytes-on-wire at least 3x smaller on v2
      than on v1 (binary zero-copy segments + u8 packing + the omitted
      ``original`` downlink image vs base64-in-JSON both ways);
    * v2 p99 feed latency no worse than v1 (best of ``FEED_ROUNDS``
      sessions per lane, so a stray scheduler hiccup does not decide a
      perf gate);
    * outputs bit-identical across the v1, v2 and (when negotiated)
      shared-memory lanes.
    """
    from repro.serve.shm import shm_available

    image = suite["baboon"]
    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=4,
                    max_batch=32, max_delay=0.002)
    network = NetworkServer(server)
    host, port = network.start()

    def lane(**options) -> dict:
        with Client(host=host, port=port, timeout=120.0,
                    **options) as client:
            client.process(image, BUDGET)        # warm the connection
            base = client.bytes_sent + client.bytes_received
            result = client.process(image, BUDGET)
            process_bytes = (client.bytes_sent + client.bytes_received
                             - base)
            p99s, feed_bytes, outcomes = [], 0, []
            for _ in range(FEED_ROUNDS):
                with client.open_session(BUDGET) as session:
                    session.submit(image)        # warm the stream state
                    base = client.bytes_sent + client.bytes_received
                    latencies = []
                    outcomes = []
                    for _ in range(FEED_FRAMES):
                        started = time.perf_counter()
                        outcomes.append(session.submit(image))
                        latencies.append(time.perf_counter() - started)
                    feed_bytes = ((client.bytes_sent +
                                   client.bytes_received - base)
                                  / FEED_FRAMES)
                p99s.append(float(np.percentile(latencies, 99)))
            return {"shm": client._shm is not None and client._shm.active,
                    "process_bytes": int(process_bytes),
                    "feed_bytes_per_frame": round(feed_bytes, 1),
                    "feed_p99_ms": round(1e3 * min(p99s), 3),
                    "result": result, "outcomes": outcomes}

    try:
        server.warmup({"baboon": image}, budgets=(BUDGET,))
        lanes = {"v1": lane(max_version=1), "v2": lane()}
        if shm_available():
            lanes["shm"] = lane(shm=True)
    finally:
        network.close()

    section = {"protocol_v2": {
        "feed_frames": FEED_FRAMES,
        "feed_rounds": FEED_ROUNDS,
        "process_wire_shrink_v1_over_v2": round(
            lanes["v1"]["process_bytes"] / lanes["v2"]["process_bytes"], 2),
        "feed_wire_shrink_v1_over_v2": round(
            lanes["v1"]["feed_bytes_per_frame"]
            / lanes["v2"]["feed_bytes_per_frame"], 2),
        "lanes": {name: {key: value for key, value in metrics.items()
                         if key not in ("result", "outcomes")}
                  for name, metrics in lanes.items()},
    }}
    _merge_bench(section)

    if "shm" in lanes:
        assert lanes["shm"]["shm"], "same-host shm lane failed to negotiate"

    # bit-identical outputs across every lane, frame by frame
    for name, metrics in lanes.items():
        assert metrics["result"] == lanes["v1"]["result"], name
        for got, want in zip(metrics["outcomes"], lanes["v1"]["outcomes"]):
            assert got.result == want.result, name
            assert got.applied_backlight == want.applied_backlight, name

    gates = section["protocol_v2"]
    assert gates["process_wire_shrink_v1_over_v2"] >= 3.0, (
        f"v2 process traffic must be at least 3x smaller on the wire, "
        f"got {gates['process_wire_shrink_v1_over_v2']}x")
    assert gates["feed_wire_shrink_v1_over_v2"] >= 3.0, (
        f"v2 feed traffic must be at least 3x smaller on the wire, "
        f"got {gates['feed_wire_shrink_v1_over_v2']}x")
    assert lanes["v2"]["feed_p99_ms"] <= lanes["v1"]["feed_p99_ms"], (
        f"v2 p99 feed latency regressed: {lanes['v2']['feed_p99_ms']}ms "
        f"vs v1 {lanes['v1']['feed_p99_ms']}ms")
