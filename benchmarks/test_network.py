"""Benchmark: histogram-only solve RPCs versus full-image process RPCs.

The bandwidth argument of the remote serving API, measured: a client that
ships a 256-bin histogram and applies the returned LUT locally
(``Client.compensate`` — the paper's Fig. 4 decomposition across a socket)
must beat the same client shipping whole images both ways
(``Client.process``) by at least 2x on the same duplicate-heavy corpus,
with **bit-identical** outputs.  The solve path moves O(histogram) bytes
and replays a cached solution; the process path moves O(pixels) each way
and pays the server-side apply plus distortion/power accounting.

Measured throughput and latency are emitted as ``BENCH_network.json``
(override the location with the ``BENCH_NETWORK_JSON`` environment
variable) so CI accumulates a perf trajectory next to
``BENCH_serving.json`` and ``BENCH_sessions.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.bench.throughput import repeated_workload
from repro.client import Client
from repro.serve import NetworkServer, Server

#: Duplicate-heavy workload shape: 4 distinct histograms, 8 repeats each.
WORKLOAD_REPEATS = 8
BUDGET = 10.0


@pytest.mark.paper_experiment("network")
def test_solve_rpc_at_least_2x_process_rpc(pipeline):
    workload = repeated_workload(repeats=WORKLOAD_REPEATS)

    server = Server(engine=Engine(HEBSAlgorithm(pipeline)), workers=4,
                    max_batch=32, max_delay=0.002)
    network = NetworkServer(server)
    host, port = network.start()
    try:
        server.warmup(workload, budgets=(BUDGET,))
        with Client(host=host, port=port, timeout=120.0) as client:
            # one warm round trip per path: connection setup, first-touch
            # codec/JIT costs must not bias either side
            client.process(workload[0], BUDGET)
            client.compensate(workload[0], BUDGET)

            start = time.perf_counter()
            processed = [client.process(image, BUDGET)
                         for image in workload]
            process_seconds = time.perf_counter() - start

            start = time.perf_counter()
            compensated = [client.compensate(image, BUDGET)
                           for image in workload]
            solve_seconds = time.perf_counter() - start
    finally:
        network.close()

    speedup = process_seconds / solve_seconds
    solve_rps = len(workload) / solve_seconds
    process_rps = len(workload) / process_seconds

    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    payload = {
        "benchmark": "network",
        "workload": {
            "requests": len(workload),
            "distinct_histograms": len(workload) // WORKLOAD_REPEATS,
            "budget_percent": BUDGET,
            "algorithm": "hebs",
        },
        "process_rpc_seconds": round(process_seconds, 6),
        "solve_rpc_seconds": round(solve_seconds, 6),
        "speedup_solve_vs_process": round(speedup, 3),
        "solve_rpc_throughput_rps": round(solve_rps, 3),
        "process_rpc_throughput_rps": round(process_rps, 3),
        "solve_rpc_mean_latency_ms": round(
            1e3 * solve_seconds / len(workload), 3),
        "process_rpc_mean_latency_ms": round(
            1e3 * process_seconds / len(workload), 3),
    }
    destination = Path(os.environ.get("BENCH_NETWORK_JSON",
                                      "BENCH_network.json"))
    destination.write_text(json.dumps(payload, indent=2) + "\n")

    # the histogram-only path must reproduce the full-image path bitwise:
    # same output pixels, same programmed backlight, request by request
    for local, remote in zip(compensated, processed):
        assert np.array_equal(local.output.pixels, remote.output.pixels)
        assert local.backlight_factor == remote.backlight_factor

    assert speedup >= 2.0, (
        f"solve RPCs must be at least 2x full-image process RPCs, got "
        f"{speedup:.2f}x ({process_seconds:.3f}s vs {solve_seconds:.3f}s)")
