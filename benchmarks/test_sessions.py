"""Benchmark: N concurrent stream sessions versus the same sessions serially.

The multi-stream serving claim of :mod:`repro.serve`: when N video clients
each push frames through their own :class:`~repro.api.session.StreamSession`
on one server, frames from different sessions interleave into shared
``process_batch`` ticks and similar content across sessions shares one solve
through the engine cache — so the wall time beats running the same sessions
one after another (the pre-session calling convention: one engine stream at
a time, nothing shared).  The benchmark asserts the served path is at least
2x faster with every session's applied backlight honoring its smoother's
``max_step`` on every frame, and emits the measured multi-stream throughput
and per-session p95 frame latency as ``BENCH_sessions.json`` so CI
accumulates a perf trajectory (override the location with the
``BENCH_SESSIONS_JSON`` environment variable).

``hebs-adaptive`` is used for the timed run: its per-image bisection makes
the solve strongly dominate the LUT apply, which is the regime the serving
layer exists for.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.registry import HEBSAlgorithm
from repro.core.temporal import BacklightSmoother
from repro.serve import Server, run_stream_load, time_serial_stream_baseline

SESSIONS = 8
FRAMES_PER_SESSION = 5
BUDGET = 10.0
MAX_STEP = 0.05


def _session_clips(suite) -> list[list]:
    """One clip per session: every session walks the same 5 distinct scenes
    (consecutive frames repeat content, sessions overlap heavily — the
    multi-stream sweet spot the coalescer exists for)."""
    scenes = list(suite.values())[:FRAMES_PER_SESSION]
    return [list(scenes) for _ in range(SESSIONS)]


@pytest.mark.paper_experiment("sessions")
def test_concurrent_sessions_beat_serial_sessions(pipeline, suite):
    clips = _session_clips(suite)
    fresh_smoother = lambda index: {                     # noqa: E731
        "smoother": BacklightSmoother(max_step=MAX_STEP)}

    # serial baseline: one session at a time on a cache-disabled engine —
    # every frame of every session pays its own full adaptive solve
    serial_engine = Engine(HEBSAlgorithm(pipeline, adaptive=True),
                           cache_size=0)
    serial_seconds, serial_outcomes = time_serial_stream_baseline(
        serial_engine, clips, BUDGET, session_options=fresh_smoother)

    # served path: 8 concurrent sessions through one server, frames
    # interleaved into shared micro-batches over one cached engine
    server = Server(engine=Engine(HEBSAlgorithm(pipeline, adaptive=True)),
                    workers=4, max_batch=32, max_delay=0.005)
    with server:
        report = run_stream_load(server, clips, BUDGET,
                                 result_timeout=120.0,
                                 session_options=fresh_smoother)
        stats = report.stats
    served_seconds = report.elapsed_seconds
    speedup = serial_seconds / served_seconds
    session_p95 = [1e3 * latency for latency in report.session_p95().values()]

    # write the perf artifact before any assertion: the run that fails
    # the gate is exactly the run whose numbers need diagnosing
    payload = {
        "benchmark": "sessions",
        "workload": {
            "sessions": SESSIONS,
            "frames_per_session": FRAMES_PER_SESSION,
            "budget_percent": BUDGET,
            "max_step": MAX_STEP,
            "algorithm": "hebs-adaptive",
        },
        "errors": report.errors,
        "serial_seconds": round(serial_seconds, 6),
        "served_seconds": round(served_seconds, 6),
        "speedup": round(speedup, 3),
        "throughput_fps": round(report.throughput, 3),
        "session_p95_latency_ms_max": round(max(session_p95, default=0.0), 3),
        "session_p95_latency_ms_mean": round(
            sum(session_p95) / len(session_p95) if session_p95 else 0.0, 3),
        "mean_batch_size": round(stats.mean_batch_size, 3),
        "cache_hit_rate": round(stats.cache.hit_rate, 4),
        "cache_reuse_rate": round(stats.cache.reuse_rate, 4),
        "session_frames": stats.session_frames,
    }
    destination = Path(os.environ.get("BENCH_SESSIONS_JSON",
                                      "BENCH_sessions.json"))
    destination.write_text(json.dumps(payload, indent=2) + "\n")

    assert report.errors == 0
    assert len(report.traces) == SESSIONS
    assert len(session_p95) == SESSIONS

    # every session's applied backlight honors its smoother's max_step on
    # every frame, including the step off the initial full backlight
    for trace in report.traces.values():
        steps = np.abs(np.diff(np.array([1.0] + list(trace))))
        assert steps.max() <= MAX_STEP + 1e-9, steps

    # the temporal outcome matches the serial reference (all clips are the
    # same workload, so every session must reproduce the cache-less serial
    # session's trace exactly — no cross-session state leakage)
    reference = [frame.applied_backlight for frame in serial_outcomes[0]]
    for trace in report.traces.values():
        assert list(trace) == reference

    assert stats.session_frames == SESSIONS * FRAMES_PER_SESSION
    assert stats.failed == 0

    assert speedup >= 2.0, (
        f"concurrent sessions must be at least 2x the serial session "
        f"baseline, got {speedup:.2f}x "
        f"({serial_seconds:.3f}s vs {served_seconds:.3f}s)")
